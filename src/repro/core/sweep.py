"""Parallel sweep engine: fan §7/§8 day work across workers.

A multi-day evaluation sweep has exactly one inherently sequential
piece: the planning loop.  ``PlanCache(reuse_basis=True)`` keeps one
HiGHS model hot and hot-starts each day's solve from the previous day's
optimal basis, so day ``d+1``'s solve depends on day ``d`` having run.
Everything else — Holt-Winters forecasting, trace synthesis, controller
replay, and §7.1 scoring — is a pure function of ``(setup, day, seed)``
because every random draw in the pipeline is counter-based Philox keyed
on ``(seed, config, slot)``: no generator state crosses day boundaries,
so per-day work can run in any order, on any worker, and reproduce the
serial loop byte for byte.

:class:`SweepRunner` splits a sweep accordingly:

1. **parallel forecast phase** — per-day predicted demand tables fanned
   over the pool;
2. **serial planning phase** — the shared :class:`PlanCache` loop in
   the parent process (basis hot-start is the whole point of it);
3. **parallel replay phase** — per-day trace synthesis +
   ``process_table`` controller replay + (optionally)
   ``evaluate_batch`` scoring fanned over the pool.

Workers are process-backed by default (``backend="process"``); each
worker rebuilds its :class:`EuropeSetup` from one pickled payload in
the pool initializer, so ``Scenario.eval_tables`` / trace-generator
caches are worker-local (the id-keyed evaluation cache must never
travel between processes — :class:`~repro.core.scenario.Scenario`
drops it on pickle).  ``backend="thread"`` shares the parent's setup
(useful when the replay is numpy-dominated or processes are
unavailable); ``workers=1`` runs inline and *is* the pinned serial
reference path.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..workload.configs import CallConfig
from ..workload.traces import TraceGenerator
from .lp import AssignmentTable, JointLpOptions
from .planner import PlanBackend, PlannerSpec, resolve_planner, slot_support_keys

#: Demand/forecast table: ``(slot of day, config) -> call count``.
DemandTable = Dict[Tuple[int, CallConfig], float]

#: Baseline first-joiner policies every §8 window can replay.
PREDICTION_POLICIES: Tuple[str, ...] = ("wrr", "lf", "titan", "titan-next")


def available_workers() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _resolve_workers(workers) -> int:
    if workers is None or workers == "auto":
        return available_workers()
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1 (or 'auto')")
    return count


# ---------------------------------------------------------------------------
# Worker-side state and task functions
# ---------------------------------------------------------------------------


class _WorkerState:
    """Per-worker context: the setup plus per-seed trace generators.

    The generator cache is what turns "fresh :class:`TraceGenerator`
    per day" into "one generator per worker": its per-config Philox
    keys and first-joiner tables are built once and reused for every
    day the worker replays (streams are (config, slot)-addressed, so
    sharing the generator across days changes nothing).
    """

    def __init__(self, setup) -> None:
        self.setup = setup
        self._generators: Dict[int, TraceGenerator] = {}
        self._slot_planners: Dict[Tuple, object] = {}

    def trace_generator(self, seed: int) -> TraceGenerator:
        generator = self._generators.get(seed)
        if generator is None:
            generator = TraceGenerator(
                self.setup.demand, top_n_configs=self.setup.top_n_configs, seed=seed
            )
            self._generators[seed] = generator
        return generator

    def slot_planner(self, configs: Tuple[CallConfig, ...], options: JointLpOptions, slot: int):
        """This worker's hot single-slot :class:`PlanCache` for ``slot``.

        Keyed on the full planning signature so a worker re-used across
        sweeps (or config unions) never serves a stale structure; the
        persistent per-slot session hot-starts across the days the
        worker plans.
        """
        from .titan_next import PlanCache

        key = (configs, options, slot)
        cache = self._slot_planners.get(key)
        if cache is None:
            cache = PlanCache(
                self.setup.scenario, list(configs), slots=[slot], options=options, reuse_basis=True
            )
            self._slot_planners[key] = cache
        return cache


#: Process-pool worker context, set once by :func:`_init_worker`.
_WORKER_STATE: Optional[_WorkerState] = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: build this worker's setup from the pickle.

    Run once per worker process.  Unpickling (rather than inheriting a
    forked reference) guarantees the worker owns fresh ``Scenario``
    caches regardless of the multiprocessing start method.
    """
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(pickle.loads(payload))


def _state_or_worker(state: Optional[_WorkerState]) -> _WorkerState:
    resolved = state if state is not None else _WORKER_STATE
    if resolved is None:
        raise RuntimeError("sweep task invoked outside a SweepRunner pool")
    return resolved


def _forecast_day_task(task, state: Optional[_WorkerState] = None):
    """(day, history_weeks, reduced) -> (day, predicted demand table)."""
    from .titan_next import predicted_demand_for_day

    day, history_weeks, reduced = task
    worker = _state_or_worker(state)
    return day, predicted_demand_for_day(worker.setup, day, history_weeks, reduced=reduced)


def _replay_day_task(task, state: Optional[_WorkerState] = None):
    """Replay one §8 day: synthesize the trace once, run each policy.

    ``task`` is ``(day, plan_assignment, policies, seed, reduced,
    evaluate)``; returns ``(day, {policy: PredictionDayResult})``,
    identical to what :func:`~repro.core.titan_next.run_prediction_day`
    produces for the same day and seed.
    """
    from .titan_next import _prediction_day_result

    day, plan_assignment, policies, seed, reduced, evaluate = task
    worker = _state_or_worker(state)
    table = worker.trace_generator(seed).table_for_day(day)
    results = {}
    for name in policies:
        result = _prediction_day_result(
            worker.setup, name, table, seed, reduced, plan_assignment=plan_assignment
        )
        if evaluate:
            result.evaluation = result.evaluate(worker.setup.scenario)
        results[name] = result
    return day, results


def _plan_slot_task(task, state: Optional[_WorkerState] = None):
    """Solve one slot subproblem of the decomposed planner.

    ``task`` is ``(configs, options, slot, slot_demand, bound)``;
    returns the slot optimum's support keys (the columns the coupling
    pass seeds its restricted master with).  The worker keeps one hot
    per-slot cache per planning signature, so a day's slot solve
    hot-starts from the previous day the worker planned that slot.
    """
    configs, options, slot, slot_demand, bound = task
    worker = _state_or_worker(state)
    return slot_support_keys(worker.slot_planner(configs, options, slot), slot_demand, bound)


def _oracle_day_task(task, state: Optional[_WorkerState] = None):
    """Score one §7 oracle day for a set of policies.

    ``task`` is ``(day, demand, titan_next_assignment, policies)``;
    ``titan_next_assignment`` carries the serial planning phase's
    cached-LP optimum (``None`` lets the worker solve a fresh LP, the
    ``use_plan_cache=False`` path).
    """
    from .titan_next import run_oracle_day

    day, demand, tn_assignment, policies = task
    worker = _state_or_worker(state)
    return day, run_oracle_day(
        worker.setup,
        day,
        policies=policies,
        demand=demand,
        titan_next_assignment=tn_assignment,
    )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class SweepRunner:
    """Multi-day §7/§8 sweeps with a worker pool over the per-day phase.

    ``workers=1`` (the default) runs everything inline — that *is* the
    serial reference; any higher worker count must reproduce it byte
    for byte, which the counter-based randomness guarantees and
    ``tests/test_sweep_parallel.py`` pins.

    ``backend`` is ``"process"`` (default for ``workers > 1``),
    ``"thread"``, or ``"serial"``; ``workers="auto"`` uses the CPUs the
    process is allowed to run on.  The runner itself is cheap — it owns
    no pool between calls, so it can be kept around or rebuilt freely.

    ``planner`` picks the planning backend and orchestration (see
    :mod:`repro.core.planner`): ``"monolithic"`` (default, the pinned
    hot-started loop), ``"decomposed"`` (slot-sharded solves fanned
    over the pool + an exact coupling pass), and/or ``"pipelined"``
    (plan day ``d+1`` in the caller's thread while the pool replays day
    ``d``, instead of strictly alternating phases).  Every combination
    reproduces the monolithic plans — bit-exactly for monolithic
    specs, to solver precision for decomposed ones.
    """

    def __init__(
        self,
        setup,
        workers=1,
        backend: Optional[str] = None,
        mp_context=None,
        planner=None,
    ) -> None:
        self.setup = setup
        self.workers = _resolve_workers(workers)
        if backend is None:
            backend = "process" if self.workers > 1 else "serial"
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown sweep backend {backend!r}")
        if self.workers == 1:
            backend = "serial"
        self.backend = backend
        self.mp_context = mp_context
        self.planner: PlannerSpec = resolve_planner(planner)
        # Inline/thread execution state: shares the caller's setup, so
        # serial sweeps also reuse one TraceGenerator across days.
        self._state = _WorkerState(setup)

    # -- pool plumbing -----------------------------------------------------

    @contextmanager
    def worker_pool(self, tasks_hint: int):
        """One executor shared by several :meth:`map_days` calls.

        A multi-phase sweep (forecast fan-out, serial planning, replay
        fan-out) should spawn its process workers — and unpickle the
        setup payload in each — once per sweep, not once per phase;
        pass the yielded pool to each phase.  Yields ``None`` (inline
        execution) for serial runners or single-task hints.
        """
        if self.backend == "serial" or tasks_hint <= 1:
            yield None
            return
        workers = min(self.workers, tasks_hint)
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                yield pool
            return
        payload = pickle.dumps(self.setup)
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            yield pool

    def map_days(self, fn: Callable, tasks: Sequence, pool=None) -> List:
        """Run ``fn`` over per-day tasks, in task order.

        Tasks must be independent (the per-day §7/§8 work is, by the
        Philox counter-keying contract).  A single task — or a serial
        runner — executes inline; ``pool`` reuses an executor from
        :meth:`worker_pool` instead of opening one per call.
        """
        tasks = list(tasks)
        if self.backend == "serial" or len(tasks) <= 1:
            return [fn(task, state=self._state) for task in tasks]
        if self.backend == "thread":
            fn = partial(fn, state=self._state)
        if pool is not None:
            return list(pool.map(fn, tasks))
        with self.worker_pool(len(tasks)) as opened:
            return list(opened.map(fn, tasks))

    # -- §8 prediction sweeps ----------------------------------------------

    def forecast_days(
        self, days: Sequence[int], history_weeks: int = 4, reduced: bool = True, pool=None
    ) -> Dict[int, DemandTable]:
        """Parallel phase 1: per-day Holt-Winters forecast tables."""
        tasks = [(day, history_weeks, reduced) for day in days]
        return dict(self.map_days(_forecast_day_task, tasks, pool=pool))

    def _plan_backend(
        self,
        demands: Dict[int, DemandTable],
        lp_options: Optional[JointLpOptions],
        pool,
    ) -> Tuple[PlanBackend, Callable[[int], float]]:
        """Build this runner's planner backend for a set of day tables.

        Returns the backend (covering the union of the days' configs)
        plus the per-day E2E bound resolver.  With the decomposed spec
        and a live pool, the backend's slot subproblems fan out through
        :func:`_plan_slot_task` (worker-side hot per-slot caches);
        otherwise slots solve serially inside the backend.
        """
        from .titan_next import day_e2e_bound_ms

        configs = sorted({c for table in demands.values() for _, c in table}, key=str)
        if not configs:
            raise ValueError("no predicted demand across the requested days")
        base_options = lp_options if lp_options is not None else JointLpOptions()

        slot_map = None
        if self.planner.backend == "decomposed" and pool is not None:
            signature = tuple(configs)

            def slot_map(tasks):
                wrapped = [
                    (signature, base_options, t, slot_demand, bound)
                    for t, slot_demand, bound in tasks
                ]
                return self.map_days(_plan_slot_task, wrapped, pool=pool)

        backend = self.planner.build(
            self.setup.scenario, configs, options=base_options, slot_map=slot_map
        )

        def bound_for(day: int) -> float:
            return lp_options.e2e_bound_ms if lp_options is not None else day_e2e_bound_ms(day)

        return backend, bound_for

    def plan_days(
        self,
        predictions: Dict[int, DemandTable],
        lp_options: Optional[JointLpOptions] = None,
        pool=None,
    ) -> Dict[int, AssignmentTable]:
        """Phase 2: the planning loop, through this runner's backend.

        The monolithic backend is one
        :class:`~repro.core.titan_next.PlanCache` over the union of
        predicted configs: each day refreshes the C1/C4 RHS and
        hot-starts HiGHS from the previous day's optimal basis — which
        is why the day loop stays in the parent process, in day order.
        The decomposed backend shards each day by slot (fanned over
        ``pool`` when given) and reconciles with an exact coupling
        pass.  When ``lp_options`` is omitted each day gets the §7.5
        weekday/weekend E2E bound.
        """
        backend, bound_for = self._plan_backend(predictions, lp_options, pool)
        plans: Dict[int, AssignmentTable] = {}
        for day, prediction in predictions.items():
            solved = backend.solve_day(prediction, e2e_bound_ms=bound_for(day))
            if not solved.is_optimal:
                raise RuntimeError(f"Titan-Next planning LP failed for day {day}: {solved.status}")
            plans[day] = solved.assignment
        return plans

    def replay_days(
        self,
        days: Sequence[int],
        plans: Optional[Dict[int, AssignmentTable]] = None,
        policies: Sequence[str] = ("titan-next",),
        seed: int = 71,
        reduced: bool = True,
        evaluate: bool = False,
        pool=None,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """Parallel phase 3: per-day trace synthesis + controller replay.

        Each worker synthesizes the day's :class:`CallTable` once (one
        generator per worker, reused across its days) and feeds it to
        every requested controller's ``process_table``.  With
        ``evaluate=True`` the worker also scores each result through
        ``evaluate_batch`` (worker-local ``Scenario.eval_tables``) and
        attaches it as ``PredictionDayResult.evaluation``.
        """
        plans = plans if plans is not None else {}
        chosen = tuple(policies)
        tasks = [(day, plans.get(day), chosen, seed, reduced, evaluate) for day in days]
        return dict(self.map_days(_replay_day_task, tasks, pool=pool))

    def run_prediction_window(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """The §8 experiment for every (day, policy) in a window.

        Per (day, policy) the output is identical to
        :func:`~repro.core.titan_next.run_prediction_day` — same trace,
        same seeds, same plan optimum — for any worker count.
        """
        day_list = list(days)
        chosen = tuple(policies) if policies is not None else PREDICTION_POLICIES
        if "titan-next" not in chosen:
            return self.replay_days(
                day_list, policies=chosen, seed=seed, reduced=reduced, evaluate=evaluate
            )
        # One pool spans both parallel phases: workers spawn (and
        # unpickle the setup) once, idling only through the short
        # serial planning loop in between.
        with self.worker_pool(len(day_list)) as pool:
            predictions = self.forecast_days(
                day_list, history_weeks, reduced=reduced, pool=pool
            )
            if self.planner.pipelined and pool is not None:
                return self._pipelined_window(
                    day_list, predictions, chosen, lp_options, reduced, seed, evaluate, pool
                )
            plans = self.plan_days(predictions, lp_options=lp_options, pool=pool)
            return self.replay_days(
                day_list,
                plans=plans,
                policies=chosen,
                seed=seed,
                reduced=reduced,
                evaluate=evaluate,
                pool=pool,
            )

    def _pipelined_window(
        self,
        day_list: Sequence[int],
        predictions: Dict[int, DemandTable],
        policies: Tuple[str, ...],
        lp_options: Optional[JointLpOptions],
        reduced: bool,
        seed: int,
        evaluate: bool,
        pool,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """Planning/replay pipelining: plan day ``d+1`` while the pool
        replays day ``d``.

        The planner runs in the caller's thread in day order — the same
        hot-start chain, hence the same plans, as the phase-alternating
        path — but each day's replay is *submitted* the moment its plan
        is solved, so the pool chews replay (and, for the decomposed
        backend, slot-subproblem) tasks while the next day's LP solves.
        Results are gathered at the end, keyed and ordered by day.
        """
        backend, bound_for = self._plan_backend(predictions, lp_options, pool)
        fn = _replay_day_task
        if self.backend == "thread":
            fn = partial(_replay_day_task, state=self._state)
        futures = []
        for day in day_list:
            solved = backend.solve_day(predictions[day], e2e_bound_ms=bound_for(day))
            if not solved.is_optimal:
                raise RuntimeError(f"Titan-Next planning LP failed for day {day}: {solved.status}")
            task = (day, solved.assignment, policies, seed, reduced, evaluate)
            futures.append(pool.submit(fn, task))
        return dict(future.result() for future in futures)

    def run_prediction_sweep(
        self,
        days: Sequence[int],
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
    ) -> Dict[int, "PredictionDayResult"]:
        """Titan-Next only over a run of days (the classic §8 sweep)."""
        window = self.run_prediction_window(
            days,
            policies=("titan-next",),
            history_weeks=history_weeks,
            lp_options=lp_options,
            reduced=reduced,
            seed=seed,
            evaluate=evaluate,
        )
        return {day: results["titan-next"] for day, results in window.items()}

    # -- §7 oracle sweeps ----------------------------------------------------

    def run_oracle_days(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        use_plan_cache: bool = True,
    ) -> Dict[int, Dict[str, "EvaluationResult"]]:
        """The §7 oracle comparison over a run of days.

        Demand sampling and (with ``use_plan_cache``) the Titan-Next
        cached-LP solves run serially in the parent; baseline policy
        assignment and all ``evaluate_batch`` scoring fan out per day.
        Identical to a :func:`~repro.core.titan_next.run_oracle_day`
        loop for any worker count.
        """
        from .titan_next import oracle_demand_for_day

        day_list = list(days)
        chosen = tuple(policies) if policies is not None else ("wrr", "titan", "lf", "titan-next")
        demands = {day: oracle_demand_for_day(self.setup, day) for day in day_list}
        if not (use_plan_cache and "titan-next" in chosen and day_list):
            tasks = [(day, demands[day], None, chosen) for day in day_list]
            return dict(self.map_days(_oracle_day_task, tasks))

        # One pool spans planning and scoring, so the pipelined mode
        # can overlap the two and the decomposed backend can fan its
        # slot subproblems over the same workers.
        with self.worker_pool(len(day_list)) as pool:
            backend, bound_for = self._plan_backend(demands, None, pool)
            if self.planner.pipelined and pool is not None:
                futures = []
                for day in day_list:
                    solved = backend.solve_day(demands[day], e2e_bound_ms=bound_for(day))
                    if not solved.is_optimal:
                        raise RuntimeError(
                            f"Titan-Next cached LP failed for day {day}: {solved.status}"
                        )
                    task = (day, demands[day], solved.assignment, chosen)
                    fn = _oracle_day_task
                    if self.backend == "thread":
                        fn = partial(_oracle_day_task, state=self._state)
                    futures.append(pool.submit(fn, task))
                return dict(future.result() for future in futures)
            tn_plans: Dict[int, AssignmentTable] = {}
            for day in day_list:
                solved = backend.solve_day(demands[day], e2e_bound_ms=bound_for(day))
                if not solved.is_optimal:
                    raise RuntimeError(f"Titan-Next cached LP failed for day {day}: {solved.status}")
                tn_plans[day] = solved.assignment
            tasks = [(day, demands[day], tn_plans.get(day), chosen) for day in day_list]
            return dict(self.map_days(_oracle_day_task, tasks, pool=pool))
