"""Parallel sweep engine: fan §7/§8 day work across workers.

A multi-day evaluation sweep has exactly one inherently sequential
piece: the planning loop.  ``PlanCache(reuse_basis=True)`` keeps one
HiGHS model hot and hot-starts each day's solve from the previous day's
optimal basis, so day ``d+1``'s solve depends on day ``d`` having run.
Everything else — Holt-Winters forecasting, trace synthesis, controller
replay, and §7.1 scoring — is a pure function of ``(setup, day, seed)``
because every random draw in the pipeline is counter-based Philox keyed
on ``(seed, config, slot)``: no generator state crosses day boundaries,
so per-day work can run in any order, on any worker, and reproduce the
serial loop byte for byte.

:class:`SweepRunner` splits a sweep accordingly:

1. **parallel forecast phase** — per-day predicted demand tables fanned
   over the pool;
2. **serial planning phase** — the shared :class:`PlanCache` loop in
   the parent process (basis hot-start is the whole point of it);
3. **parallel replay phase** — per-day trace synthesis +
   ``process_table`` controller replay + (optionally)
   ``evaluate_batch`` scoring fanned over the pool.

Workers are process-backed by default (``backend="process"``); each
worker rebuilds its :class:`EuropeSetup` from one pickled payload in
the pool initializer, so ``Scenario.eval_tables`` / trace-generator
caches are worker-local (the id-keyed evaluation cache must never
travel between processes — :class:`~repro.core.scenario.Scenario`
drops it on pickle).  ``backend="thread"`` shares the parent's setup
(useful when the replay is numpy-dominated or processes are
unavailable); ``workers=1`` runs inline and *is* the pinned serial
reference path.

**Fault tolerance.** Long sweeps die to the environment, not the math:
a worker OOM-killed mid-replay collapses the whole
``ProcessPoolExecutor`` (``BrokenProcessPool``), one hung solve stalls
the window forever, and a transient error in day 93 of a 100-day sweep
throws away 92 finished days.  The runner therefore gathers pooled
results through a supervision loop governed by :class:`FaultPolicy`:

* a task that *raises* is retried in place with exponential backoff,
  up to ``max_retries`` — retries are safe because per-day work is a
  pure function of the task tuple (the Philox counter-keying
  contract), so a retried day is byte-identical to a first-try day;
* a task that exceeds ``timeout_s`` has its pool killed and rebuilt,
  and every incomplete task is resubmitted (only the hung task's
  attempt counter advances);
* a broken pool (worker killed by a signal/OOM) is rebuilt and all
  incomplete tasks resubmitted, up to ``max_pool_rebuilds`` per pool;
* tasks that exhaust their retries are reported as structured
  :class:`SweepFailure` records on the raised :class:`SweepError` —
  naming the phase, day, attempt count, and last error.

``inject_fault=`` accepts a picklable callable (see
:class:`KillWorkerFault`, :class:`HangFault`) invoked worker-side
before every pooled task — the deterministic chaos hook the recovery
tests drive.  The inline ``workers=1`` path never injects and never
retries: it *is* the reference the recovered runs are compared to.

**Shared memory.** ``backend="process+shm"`` (or ``shared_memory=True``)
replaces both pickle channels with their scale-proof counterparts:

* *zero-copy worker state* — the pool payload becomes a
  :class:`~repro.core.shm.ShmArena` holding every large array of the
  setup (plus the pre-warmed ``Scenario.eval_tables`` coefficient
  blocks and the ``link_incidence_csr``) in one named shared-memory
  segment; the pool initializer maps read-only ``np.ndarray`` views
  instead of rebuilding the setup from a pickle, and a
  :class:`FaultPolicy` pool rebuild re-maps the same segment rather
  than re-allocating it;
* *compact day summaries* — per-day replay tasks return a SoA
  :class:`DaySummary` (realized-table rows + ``ControllerStats`` +
  the optional in-pool ``EvaluationResult``) instead of the full
  ``CallTable``/``AssignmentBatch``; the parent wraps each in a
  :class:`SummaryDayResult`, which reconstructs the full tables on
  demand by re-running the day (exact by the Philox counter-keying
  contract).  ``return_tables=True`` keeps today's full-result
  behaviour and stays the pinned byte-equivalence reference;
* *streaming sweeps* — :meth:`SweepRunner.iter_days` / ``chunk_days=``
  plan and replay a long window chunk by chunk over one pool and one
  full-window planning structure, so a 52-week sweep holds O(chunk)
  day results in memory while reproducing the monolithic run byte for
  byte (one hot-start chain, in day order, across chunks).
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeout
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..workload.configs import CallConfig
from ..workload.demand import SLOTS_PER_DAY
from ..workload.traces import TraceGenerator
from .lp import AssignmentTable, JointLpOptions
from .planner import PlanBackend, PlannerSpec, SlotMap, SlotTask, resolve_planner, slot_support_keys
from .scenario import EVAL_OPTION_ORDER
from .shm import ShmArena, ShmPayload, map_payload

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

    from ..analysis.metrics import EvaluationResult
    from .scenario import Scenario, ScenarioEvalTables
    from .titan_next import EuropeSetup, PlanCache, PredictionDayResult

#: Demand/forecast table: ``(slot of day, config) -> call count``.
DemandTable = Dict[Tuple[int, CallConfig], float]

#: One §7 oracle task: (day, demand, cached titan-next plan, policies).
OracleTask = Tuple[int, DemandTable, Optional[AssignmentTable], Tuple[str, ...]]

#: Baseline first-joiner policies every §8 window can replay.
PREDICTION_POLICIES: Tuple[str, ...] = ("wrr", "lf", "titan", "titan-next")


def available_workers() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _resolve_workers(workers: int | str | None) -> int:
    if workers is None or workers == "auto":
        return available_workers()
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1 (or 'auto')")
    return count


# ---------------------------------------------------------------------------
# Fault tolerance: policy, failure reports, chaos injectors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPolicy:
    """Supervision knobs for pooled sweep phases.

    ``timeout_s`` bounds how long the gatherer waits on any one task's
    result once it becomes the next task in order; ``None`` disables
    the hang watchdog.  ``max_retries`` is per task (exceptions and
    hangs both advance the attempt counter); ``max_pool_rebuilds``
    bounds kill-and-respawn cycles per pool, so a deterministic
    crasher cannot respawn workers forever.
    """

    max_retries: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_multiplier ** max(attempt - 1, 0)


@dataclass(frozen=True)
class SweepFailure:
    """Structured record of one task incident.

    Incidents that were *recovered* (a retry succeeded, a pool rebuild
    carried on) land in :attr:`SweepRunner.fault_log`; incidents that
    exhausted the retry budget ride the raised :class:`SweepError` as
    its ``failures``.
    """

    kind: str  #: task family: "forecast", "replay", "plan-slot", "oracle"
    label: str  #: human-readable task identity, e.g. "replay:day=31"
    attempts: int  #: attempts so far for this task (1 + retries)
    error_type: str  #: the exception's class name (or "Timeout"/"BrokenPool")
    message: str  #: the exception's str()
    traceback: str = ""  #: formatted traceback, when one exists


class SweepError(RuntimeError):
    """A sweep phase gave up; ``failures`` lists the dead tasks."""

    def __init__(self, message: str, failures: Sequence[SweepFailure] = ()) -> None:
        super().__init__(message)
        self.failures: List[SweepFailure] = list(failures)


def _task_day(task: object) -> Optional[int]:
    """The day a task tuple targets, when its first element is one."""
    if isinstance(task, tuple) and task and isinstance(task[0], int):
        return task[0]
    return None


@dataclass(frozen=True)
class KillWorkerFault:
    """Chaos injector: hard-kill the worker running a chosen task.

    ``os._exit`` mimics an OOM-kill/SIGKILL — no cleanup, no exception,
    the pool just loses a process and every pending future breaks.
    Fires once (attempt 0 only), so the rebuilt pool's resubmission
    completes.  Process backend only: on the thread backend this would
    take down the parent.
    """

    day: int
    kind: str = "replay"
    exit_code: int = 13

    def __call__(self, kind: str, task: object, attempt: int) -> None:
        if kind == self.kind and attempt == 0 and _task_day(task) == self.day:
            os._exit(self.exit_code)


@dataclass(frozen=True)
class FlakyTaskFault:
    """Chaos injector: raise a transient error on a task's first attempt.

    The mildest failure mode — the worker survives, the pool survives,
    only the task dies — exercising the in-place retry-with-backoff
    path rather than a pool rebuild.
    """

    day: int
    kind: str = "replay"
    message: str = "injected transient failure"

    def __call__(self, kind: str, task: object, attempt: int) -> None:
        if kind == self.kind and attempt == 0 and _task_day(task) == self.day:
            raise RuntimeError(f"{self.message} (day={self.day})")


@dataclass(frozen=True)
class HangFault:
    """Chaos injector: stall a chosen task far past any sane timeout.

    Sleeps ``seconds`` on attempt 0, simulating a wedged solver or
    deadlocked worker; the supervision loop's ``timeout_s`` watchdog
    must kill the pool and the resubmitted attempt runs clean.  The
    sleep is finite so an un-watched run still terminates.
    """

    day: int
    seconds: float = 60.0
    kind: str = "replay"

    def __call__(self, kind: str, task: object, attempt: int) -> None:
        if kind == self.kind and attempt == 0 and _task_day(task) == self.day:
            time.sleep(self.seconds)


# ---------------------------------------------------------------------------
# Worker-side state and task functions
# ---------------------------------------------------------------------------


class _WorkerState:
    """Per-worker context: the setup plus per-seed trace generators.

    The generator cache is what turns "fresh :class:`TraceGenerator`
    per day" into "one generator per worker": its per-config Philox
    keys and first-joiner tables are built once and reused for every
    day the worker replays (streams are (config, slot)-addressed, so
    sharing the generator across days changes nothing).
    """

    def __init__(self, setup: "EuropeSetup") -> None:
        self.setup = setup
        self._generators: Dict[int, TraceGenerator] = {}
        self._slot_planners: Dict[
            Tuple[Tuple[CallConfig, ...], JointLpOptions, int], "PlanCache"
        ] = {}
        #: The shared-memory attachment whose pages back this worker's
        #: mapped arrays (``process+shm`` backend); pinned here so the
        #: mapping outlives every view for the life of the worker.
        self.attachment: Optional["SharedMemory"] = None

    def trace_generator(self, seed: int) -> TraceGenerator:
        generator = self._generators.get(seed)
        if generator is None:
            generator = TraceGenerator(
                self.setup.demand, top_n_configs=self.setup.top_n_configs, seed=seed
            )
            self._generators[seed] = generator
        return generator

    def slot_planner(
        self, configs: Tuple[CallConfig, ...], options: JointLpOptions, slot: int
    ) -> "PlanCache":
        """This worker's hot single-slot :class:`PlanCache` for ``slot``.

        Keyed on the full planning signature so a worker re-used across
        sweeps (or config unions) never serves a stale structure; the
        persistent per-slot session hot-starts across the days the
        worker plans.
        """
        from .titan_next import PlanCache

        key = (configs, options, slot)
        cache = self._slot_planners.get(key)
        if cache is None:
            cache = PlanCache(
                self.setup.scenario, list(configs), slots=[slot], options=options, reuse_basis=True
            )
            self._slot_planners[key] = cache
        return cache


#: Process-pool worker context, set once by :func:`_init_worker`.
_WORKER_STATE: Optional[_WorkerState] = None


def _init_worker(payload: "ShmPayload | bytes") -> None:
    """Pool initializer: build this worker's setup from the payload.

    Run once per worker process.  ``payload`` is either the pickled
    setup bytes (classic ``process`` backend — unpickling rather than
    inheriting a forked reference guarantees the worker owns fresh
    ``Scenario`` caches regardless of the multiprocessing start method)
    or a :class:`~repro.core.shm.ShmPayload` (``process+shm``), in
    which case every large array comes back as a read-only zero-copy
    view of the shared segment, the parent's pre-warmed evaluation
    tables and link CSR are installed on the worker's scenario (they
    travel in the same pickle graph as the setup, so their config
    identities match the worker's universe and the id-keyed cache
    lookup stays valid), and the segment attachment is pinned on the
    worker state so the mapping outlives the views.
    """
    global _WORKER_STATE
    if isinstance(payload, ShmPayload):
        (setup, warm_tables, link_csr), attachment = map_payload(payload)
        setup.scenario.install_eval_tables(warm_tables)
        setup.scenario.install_link_csr(*link_csr)
        _WORKER_STATE = _WorkerState(setup)
        _WORKER_STATE.attachment = attachment
    else:
        _WORKER_STATE = _WorkerState(pickle.loads(payload))


def _state_or_worker(state: Optional[_WorkerState]) -> _WorkerState:
    resolved = state if state is not None else _WORKER_STATE
    if resolved is None:
        raise RuntimeError("sweep task invoked outside a SweepRunner pool")
    return resolved


def _forecast_day_task(
    task: Tuple[int, int, bool], state: Optional[_WorkerState] = None
) -> Tuple[int, DemandTable]:
    """(day, history_weeks, reduced) -> (day, predicted demand table)."""
    from .titan_next import predicted_demand_for_day

    day, history_weeks, reduced = task
    worker = _state_or_worker(state)
    return day, predicted_demand_for_day(worker.setup, day, history_weeks, reduced=reduced)


def _replay_day_task(
    task: Tuple[int, Optional[AssignmentTable], Tuple[str, ...], int, bool, bool, bool],
    state: Optional[_WorkerState] = None,
) -> Tuple[int, Dict[str, object]]:
    """Replay one §8 day: synthesize the trace once, run each policy.

    ``task`` is ``(day, plan_assignment, policies, seed, reduced,
    evaluate, compact)``; returns ``(day, {policy: result})`` where each
    result is a full ``PredictionDayResult`` — identical to what
    :func:`~repro.core.titan_next.run_prediction_day` produces for the
    same day and seed — or, with ``compact``, a :class:`DaySummary`
    holding only the realized-table rows, stats, and (optional) score:
    the worker→parent payload drops from the full ``CallTable`` /
    ``AssignmentBatch`` columns to a few distinct-row arrays.
    """
    from .titan_next import _prediction_day_result

    day, plan_assignment, policies, seed, reduced, evaluate, compact = task
    worker = _state_or_worker(state)
    table = worker.trace_generator(seed).table_for_day(day)
    results: Dict[str, object] = {}
    for name in policies:
        result = _prediction_day_result(
            worker.setup, name, table, seed, reduced, plan_assignment=plan_assignment
        )
        if compact:
            results[name] = summarize_day_result(
                worker.setup.scenario, result, day, seed, reduced, evaluate=evaluate
            )
        else:
            if evaluate:
                result.evaluation = result.evaluate(worker.setup.scenario)
            results[name] = result
    return day, results


def _plan_slot_task(
    task: Tuple[Tuple[CallConfig, ...], JointLpOptions, int, DemandTable, float],
    state: Optional[_WorkerState] = None,
) -> List[Tuple[int, CallConfig, str, str]]:
    """Solve one slot subproblem of the decomposed planner.

    ``task`` is ``(configs, options, slot, slot_demand, bound)``;
    returns the slot optimum's support keys (the columns the coupling
    pass seeds its restricted master with).  The worker keeps one hot
    per-slot cache per planning signature, so a day's slot solve
    hot-starts from the previous day the worker planned that slot.
    """
    configs, options, slot, slot_demand, bound = task
    worker = _state_or_worker(state)
    return slot_support_keys(worker.slot_planner(configs, options, slot), slot_demand, bound)


def _oracle_day_task(
    task: Tuple[int, DemandTable, Optional[AssignmentTable], Tuple[str, ...]],
    state: Optional[_WorkerState] = None,
) -> Tuple[int, Dict[str, "EvaluationResult"]]:
    """Score one §7 oracle day for a set of policies.

    ``task`` is ``(day, demand, titan_next_assignment, policies)``;
    ``titan_next_assignment`` carries the serial planning phase's
    cached-LP optimum (``None`` lets the worker solve a fresh LP, the
    ``use_plan_cache=False`` path).
    """
    from .titan_next import run_oracle_day

    day, demand, tn_assignment, policies = task
    worker = _state_or_worker(state)
    return day, run_oracle_day(
        worker.setup,
        day,
        policies=policies,
        demand=demand,
        titan_next_assignment=tn_assignment,
    )


#: Task-family names for failure reports and chaos-injector routing.
_KIND_OF: Dict[Callable, str] = {
    _forecast_day_task: "forecast",
    _replay_day_task: "replay",
    _plan_slot_task: "plan-slot",
    _oracle_day_task: "oracle",
}


def _guarded_task(
    payload: Tuple[Callable, str, object, int, Optional[Callable]],
    state: Optional[_WorkerState] = None,
) -> object:
    """Worker-side shim every pooled task runs through.

    ``payload`` is ``(fn, kind, task, attempt, inject)``: the injector
    (if any) fires first — it may kill the worker, hang, or raise —
    then the real task function runs.  Keeping the shim module-level
    keeps the submission picklable for the process backend.
    """
    fn, kind, task, attempt, inject = payload
    if inject is not None:
        inject(kind, task, attempt)
    return fn(task, state=state)


# ---------------------------------------------------------------------------
# Compact day summaries (the process+shm result channel)
# ---------------------------------------------------------------------------


@dataclass
class DaySummary:
    """Structure-of-arrays summary of one (day, policy) replay.

    The compact worker→parent result: instead of the day's full
    ``CallTable`` / ``AssignmentBatch`` columns (one row per call), it
    carries the *distinct* realized assignment rows — exactly the
    ``(slot, config, dc, option, count)`` arrays
    :func:`~repro.analysis.metrics._rows_from_batch` produces, DC and
    option indices in scenario/:data:`EVAL_OPTION_ORDER` order — plus
    the ``ControllerStats`` and the optional in-pool
    ``EvaluationResult``.  Everything §7.1 scoring and the realized
    table need is derivable from these rows bit-for-bit; the full
    per-call batch remains reconstructable on demand because replay is
    a pure function of ``(setup, day, seed)`` (the Philox
    counter-keying contract) — see :class:`SummaryDayResult`.

    ``row_cfg`` indexes the canonical config universe
    (``universe.top(top_n_configs)`` order — the ``CallTable.configs``
    tuple); the configs themselves are deliberately *not* shipped,
    since the parent holds an equal universe.
    """

    policy: str
    day: int
    seed: int
    reduced: bool
    slots_per_day: int
    row_slot: np.ndarray
    row_cfg: np.ndarray
    row_dc: np.ndarray
    row_opt: np.ndarray
    row_count: np.ndarray
    dc_codes: Tuple[str, ...]
    stats: object
    evaluation: Optional[object] = None


def summarize_day_result(
    scenario: "Scenario",
    result: "PredictionDayResult",
    day: int,
    seed: int,
    reduced: bool,
    evaluate: bool = False,
) -> DaySummary:
    """Collapse one ``PredictionDayResult`` into a :class:`DaySummary`.

    Runs worker-side.  The distinct-row group-by is computed once and
    shared between the summary and (with ``evaluate``) the §7.1 score,
    so the in-pool evaluation is byte-identical to the full path's
    ``result.evaluate(scenario)`` — same rows, same
    ``_evaluate_rows`` accumulation order.
    """
    from ..analysis.metrics import _evaluate_rows, _rows_from_batch

    configs, slot, cfg, dc, opt, counts = _rows_from_batch(
        scenario, result.assignments, SLOTS_PER_DAY
    )
    evaluation = None
    if evaluate:
        evaluation = _evaluate_rows(
            scenario, configs, slot, cfg, dc, opt, counts, policy_name=result.policy
        )
    return DaySummary(
        policy=result.policy,
        day=day,
        seed=seed,
        reduced=reduced,
        slots_per_day=SLOTS_PER_DAY,
        row_slot=slot,
        row_cfg=cfg,
        row_dc=dc,
        row_opt=opt,
        row_count=counts,
        dc_codes=tuple(scenario.dc_codes),
        stats=result.stats,
        evaluation=evaluation,
    )


class SummaryDayResult:
    """Parent-side view of a :class:`DaySummary` with the
    ``PredictionDayResult`` surface.

    ``realized_table`` and ``evaluate`` are answered straight from the
    summary's distinct-row arrays (byte-identical to the full result's
    answers); ``assignments`` — the full per-call batch — is
    reconstructed lazily by re-running the day from the parent's own
    state, exact by the Philox counter-keying contract.  A scenario or
    slot fold other than the one the summary was computed against
    falls back to the reconstruction, so ablation-style re-scoring can
    never silently reuse stale rows.
    """

    def __init__(
        self,
        summary: DaySummary,
        state: _WorkerState,
        configs: Sequence[CallConfig],
        plan_assignment: Optional[AssignmentTable] = None,
    ) -> None:
        self.summary = summary
        self._state = state
        self._configs = tuple(configs)
        self._plan_assignment = plan_assignment
        self._full: Optional["PredictionDayResult"] = None
        #: Mirrors ``PredictionDayResult.evaluation`` (the in-pool score).
        self.evaluation = summary.evaluation

    @property
    def policy(self) -> str:
        return self.summary.policy

    @property
    def stats(self) -> object:
        return self.summary.stats

    @property
    def assignments(self) -> object:
        return self.full_result().assignments

    def full_result(self) -> "PredictionDayResult":
        """The reconstructed full ``PredictionDayResult`` (cached)."""
        full = self._full
        if full is None:
            from .titan_next import _prediction_day_result

            s = self.summary
            table = self._state.trace_generator(s.seed).table_for_day(s.day)
            full = _prediction_day_result(
                self._state.setup,
                s.policy,
                table,
                s.seed,
                s.reduced,
                plan_assignment=self._plan_assignment,
            )
            full.evaluation = self.evaluation
            self._full = full
        return full

    def realized_table(self, slots_per_day: int = SLOTS_PER_DAY) -> AssignmentTable:
        s = self.summary
        if slots_per_day != s.slots_per_day:
            return self.full_result().realized_table(slots_per_day)
        table: AssignmentTable = {}
        for t, ci, di, oi, n in zip(s.row_slot, s.row_cfg, s.row_dc, s.row_opt, s.row_count):
            key = (
                int(t),
                self._configs[int(ci)],
                s.dc_codes[int(di)],
                EVAL_OPTION_ORDER[int(oi)],
            )
            table[key] = float(n)
        return table

    def evaluate(
        self, scenario: "Scenario", slots_per_day: int = SLOTS_PER_DAY
    ) -> "EvaluationResult":
        s = self.summary
        if scenario is not self._state.setup.scenario or slots_per_day != s.slots_per_day:
            return self.full_result().evaluate(scenario, slots_per_day)
        from ..analysis.metrics import _evaluate_rows

        return _evaluate_rows(
            scenario,
            self._configs,
            s.row_slot,
            s.row_cfg,
            s.row_dc,
            s.row_opt,
            s.row_count,
            policy_name=s.policy,
        )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class _PoolHandle:
    """A rebuildable executor: what :meth:`SweepRunner.worker_pool` yields.

    Owns the live executor plus everything needed to respawn it (the
    pickled setup payload for process pools; the shared-memory arena
    for ``process+shm``), so the supervision loop can kill a
    broken/hung pool and carry on with the same handle.  A rebuild
    re-submits the *same* payload — for the shm backend that means the
    respawned workers re-map the existing segment; the arena is never
    re-allocated, and it is disposed exactly once, by :meth:`shutdown`
    (idempotent), after the last pool that maps it is gone.  Callers
    treat the handle as an executor — ``submit`` is the whole surface.
    """

    def __init__(
        self,
        backend: str,
        workers: int,
        mp_context: Any,
        payload: "bytes | ShmPayload | None",
        arena: Optional[ShmArena] = None,
    ) -> None:
        self.backend = backend
        self.workers = workers
        self.mp_context = mp_context
        self._payload = payload
        self.arena = arena
        self.rebuilds = 0
        self._pool: Optional[Executor] = self._spawn()

    def _spawn(self) -> Executor:
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(self._payload,),
        )

    def submit(self, fn: Callable[..., object], *args: object) -> "Future[object]":
        assert self._pool is not None, "submit on a killed pool (rebuild first)"
        return self._pool.submit(fn, *args)

    def kill(self) -> None:
        """Tear the executor down without waiting on stuck work.

        Process workers are terminated outright (the only way to
        un-wedge a hung task); thread workers cannot be killed, so a
        hung thread is abandoned to finish its (finite) sleep while
        the handle moves on to a fresh executor.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def rebuild(self, policy: FaultPolicy) -> None:
        """Kill and respawn, enforcing the policy's rebuild budget."""
        self.rebuilds += 1
        if self.rebuilds > policy.max_pool_rebuilds:
            raise SweepError(
                f"sweep pool broke {self.rebuilds} times "
                f"(max_pool_rebuilds={policy.max_pool_rebuilds}); giving up"
            )
        self.kill()
        self._pool = self._spawn()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
        if self.arena is not None:
            # After the workers are gone; dispose() is idempotent, so a
            # double shutdown (or an error-path unwind that already
            # disposed) cannot double-unlink the segment.
            self.arena.dispose()


class SweepRunner:
    """Multi-day §7/§8 sweeps with a worker pool over the per-day phase.

    ``workers=1`` (the default) runs everything inline — that *is* the
    serial reference; any higher worker count must reproduce it byte
    for byte, which the counter-based randomness guarantees and
    ``tests/test_sweep_parallel.py`` pins.

    ``backend`` is ``"process"`` (default for ``workers > 1``),
    ``"thread"``, or ``"serial"``; ``workers="auto"`` uses the CPUs the
    process is allowed to run on.  The runner itself is cheap — it owns
    no pool between calls, so it can be kept around or rebuilt freely.

    ``planner`` picks the planning backend and orchestration (see
    :mod:`repro.core.planner`): ``"monolithic"`` (default, the pinned
    hot-started loop), ``"decomposed"`` (slot-sharded solves fanned
    over the pool + an exact coupling pass), and/or ``"pipelined"``
    (plan day ``d+1`` in the caller's thread while the pool replays day
    ``d``, instead of strictly alternating phases).  Every combination
    reproduces the monolithic plans — bit-exactly for monolithic
    specs, to solver precision for decomposed ones.

    ``fault_policy`` governs the pooled phases' supervision loop
    (retries, hang timeout, pool rebuilds; see :class:`FaultPolicy`)
    and ``inject_fault`` is the worker-side chaos hook — recovered
    incidents accumulate in :attr:`fault_log`, unrecoverable ones
    raise :class:`SweepError`.  Because per-day tasks are pure
    functions of their tuples, a sweep that survives a killed or hung
    worker still reproduces the serial reference byte for byte.

    ``shared_memory=True`` (equivalently ``backend="process+shm"``)
    ships worker state through a :class:`~repro.core.shm.ShmArena`
    instead of per-worker pickles: workers map the setup's dense
    arrays read-only and zero-copy.  Under that backend, per-day
    results default to compact :class:`DaySummary` payloads wrapped in
    :class:`SummaryDayResult` — ``return_tables=True`` restores full
    ``PredictionDayResult`` shipping (the pinned byte-equivalence
    reference), ``return_tables=False`` forces summaries on any
    backend.  ``chunk_days`` bounds how many days are planned, in
    flight, and held in memory at once (see :meth:`iter_days`) without
    changing any result byte.
    """

    def __init__(
        self,
        setup: "EuropeSetup",
        workers: int | str = 1,
        backend: Optional[str] = None,
        mp_context: Any = None,
        planner: "PlannerSpec | str | None" = None,
        fault_policy: Optional[FaultPolicy] = None,
        inject_fault: Optional[Callable] = None,
        shared_memory: Optional[bool] = None,
        return_tables: Optional[bool] = None,
        chunk_days: Optional[int] = None,
    ) -> None:
        self.setup = setup
        self.workers = _resolve_workers(workers)
        if backend is None:
            backend = "process" if self.workers > 1 else "serial"
        if shared_memory:
            if backend in ("process", "process+shm"):
                backend = "process+shm"
            elif not (backend == "serial" and self.workers == 1):
                # A single worker degrades to the serial reference path
                # (nothing to share); an explicit thread backend is a
                # contradiction worth refusing.
                raise ValueError("shared_memory=True requires the process backend")
        if backend not in ("serial", "thread", "process", "process+shm"):
            raise ValueError(f"unknown sweep backend {backend!r}")
        if self.workers == 1:
            backend = "serial"
        if chunk_days is not None and chunk_days < 1:
            raise ValueError("chunk_days must be >= 1 (or None)")
        self.backend = backend
        #: ``None`` defers to the backend default (summaries only under
        #: ``process+shm``); ``True``/``False`` forces full results /
        #: compact summaries everywhere.
        self.return_tables = return_tables
        #: Default streaming chunk for :meth:`iter_days` and the
        #: ``run_*`` windows; ``None`` = monolithic.
        self.chunk_days = chunk_days
        self.mp_context = mp_context
        self.planner: PlannerSpec = resolve_planner(planner)
        #: Supervision knobs for pooled phases; the serial path ignores
        #: them (no pool, no retries — it is the pinned reference).
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        #: Worker-side chaos hook ``(kind, task, attempt) -> None``;
        #: must pickle for the process backend.  Never fires inline.
        self.inject_fault = inject_fault
        #: Structured reports of every recovered incident this runner
        #: has seen (successful retries included), newest last.
        self.fault_log: List[SweepFailure] = []
        # Inline/thread execution state: shares the caller's setup, so
        # serial sweeps also reuse one TraceGenerator across days.
        self._state = _WorkerState(setup)
        self._configs_cache: Optional[Tuple[CallConfig, ...]] = None

    # -- pool plumbing -----------------------------------------------------

    @contextmanager
    def worker_pool(self, tasks_hint: int) -> Iterator[Optional[_PoolHandle]]:
        """One rebuildable pool shared by several :meth:`map_days` calls.

        A multi-phase sweep (forecast fan-out, serial planning, replay
        fan-out) should spawn its process workers — and unpickle the
        setup payload in each — once per sweep, not once per phase;
        pass the yielded :class:`_PoolHandle` to each phase.  Yields
        ``None`` (inline execution) for serial runners or single-task
        hints.
        """
        if self.backend == "serial" or tasks_hint <= 1:
            yield None
            return
        workers = min(self.workers, tasks_hint)
        arena = None
        payload = None
        if self.backend == "process+shm":
            arena = ShmArena(self._shm_state_payload())
            payload = arena.payload()
        elif self.backend == "process":
            payload = pickle.dumps(self.setup, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            handle = _PoolHandle(self.backend, workers, self.mp_context, payload, arena=arena)
        except BaseException:
            if arena is not None:
                arena.dispose()
            raise
        try:
            yield handle
        finally:
            handle.shutdown()

    def _shm_state_payload(
        self,
    ) -> Tuple["EuropeSetup", "ScenarioEvalTables", Tuple[np.ndarray, np.ndarray]]:
        """The object graph an shm pool ships: setup + warmed caches.

        The pre-built :class:`ScenarioEvalTables` for the canonical
        config universe and the link-incidence CSR ride in the *same*
        pickle graph as the setup — ``Scenario.__getstate__`` drops
        both from the scenario itself (its cache is id-keyed), but
        shipping them alongside preserves object identity through one
        ``pickle.loads``: the warm tables' config tuple arrives as the
        very objects of the worker's universe, so re-installing them
        under their new ids is valid and the worker never rebuilds the
        coefficient blocks.
        """
        configs = self._canonical_configs()
        warm_tables = self.setup.scenario.eval_tables(configs)
        link_csr = self.setup.scenario.link_incidence_csr()
        return (self.setup, warm_tables, link_csr)

    def _canonical_configs(self) -> Tuple[CallConfig, ...]:
        """The interned config universe (``CallTable.configs`` order)."""
        if self._configs_cache is None:
            self._configs_cache = tuple(
                item.config for item in self.setup.universe.top(self.setup.top_n_configs)
            )
        return self._configs_cache

    def _compact(self, return_tables: Optional[bool] = None) -> bool:
        """Resolve whether replay results travel as summaries."""
        choice = return_tables if return_tables is not None else self.return_tables
        if choice is None:
            choice = self.backend != "process+shm"
        return not choice

    def _wrap_results(self, day: int, results: Dict, plans: Dict) -> Dict:
        """Wrap a day's worker-side summaries for the caller."""
        wrapped: Dict[str, object] = {}
        for name, value in results.items():
            if isinstance(value, DaySummary):
                plan = plans.get(day) if name == "titan-next" else None
                wrapped[name] = SummaryDayResult(
                    value, self._state, self._canonical_configs(), plan_assignment=plan
                )
            else:
                wrapped[name] = value
        return wrapped

    def map_days(
        self, fn: Callable, tasks: Sequence, pool: Optional[_PoolHandle] = None
    ) -> List:
        """Run ``fn`` over per-day tasks, in task order.

        Tasks must be independent (the per-day §7/§8 work is, by the
        Philox counter-keying contract) — which is also what makes the
        fault path sound: a retried or resubmitted task reproduces its
        first-attempt result bit for bit.  A single task — or a serial
        runner — executes inline with no supervision; ``pool`` reuses
        a handle from :meth:`worker_pool` instead of opening one per
        call.
        """
        tasks = list(tasks)
        if self.backend == "serial" or len(tasks) <= 1:
            return [fn(task, state=self._state) for task in tasks]
        if pool is not None:
            return self._gather(fn, tasks, pool)
        with self.worker_pool(len(tasks)) as opened:
            assert opened is not None  # serial/single-task handled above
            return self._gather(fn, tasks, opened)

    # -- supervision --------------------------------------------------------

    def _submit_guarded(
        self, handle: _PoolHandle, fn: Callable, task: object, attempt: int
    ) -> Optional["Future[object]"]:
        """Submit one task through the worker-side guard shim.

        Returns ``None`` when the pool is already broken at submit time
        (a fast-dying worker can kill it mid-batch, making ``submit``
        itself raise) — the marker routes the task into
        :meth:`_gather`'s broken-pool recovery instead of letting the
        synchronous ``BrokenProcessPool`` escape the supervisor.
        """
        payload = (
            fn,
            _KIND_OF.get(fn, getattr(fn, "__name__", "task")),
            task,
            attempt,
            self.inject_fault,
        )
        try:
            if handle.backend == "thread":
                return handle.submit(_guarded_task, payload, self._state)
            return handle.submit(_guarded_task, payload)
        except BrokenExecutor:
            return None

    @staticmethod
    def _task_label(fn: Callable, task: object) -> str:
        kind = _KIND_OF.get(fn, getattr(fn, "__name__", "task"))
        day = _task_day(task)
        return f"{kind}:day={day}" if day is not None else kind

    def _incident(
        self,
        fn: Callable,
        task: object,
        attempts: int,
        error_type: str,
        exc: Optional[BaseException],
    ) -> SweepFailure:
        record = SweepFailure(
            kind=_KIND_OF.get(fn, getattr(fn, "__name__", "task")),
            label=self._task_label(fn, task),
            attempts=attempts,
            error_type=error_type,
            message=str(exc) if exc is not None else "",
            traceback="".join(traceback_module.format_exception(exc)) if exc is not None else "",
        )
        self.fault_log.append(record)
        return record

    def _harvest(
        self, pending: Dict[int, Optional["Future[object]"]], results: List
    ) -> None:
        """Bank every already-finished successful result in ``pending``.

        Run before a pool kill: futures that completed before the kill
        keep their results, and banking them means a rebuild only
        re-runs genuinely incomplete days.  ``None`` entries mark tasks
        whose submission already found the pool broken.
        """
        done = [(i, f) for i, f in pending.items() if f is not None and f.done()]
        for index, future in done:
            if future.cancelled() or future.exception() is not None:
                continue
            results[index] = future.result()
            del pending[index]

    def _gather(
        self,
        fn: Callable,
        tasks: Sequence,
        handle: _PoolHandle,
        pending: Optional[Dict[int, Optional["Future[object]"]]] = None,
    ) -> List:
        """The supervision loop: gather pooled results, surviving faults.

        Results are collected in task order.  A task exception retries
        in place with backoff; a hang (``FaultPolicy.timeout_s``) or a
        broken pool kills and rebuilds the executor and resubmits the
        incomplete tail; tasks out of retries are reported together on
        a :class:`SweepError` once everything else has finished.
        ``pending`` lets pipelined callers hand in futures they already
        submitted (index-keyed, aligned with ``tasks``).
        """
        policy = self.fault_policy
        n = len(tasks)
        results: List = [None] * n
        attempts = [0] * n
        failures: List[SweepFailure] = []

        if pending is None:
            pending = {i: self._submit_guarded(handle, fn, tasks[i], 0) for i in range(n)}

        def resubmit_incomplete() -> None:
            self._harvest(pending, results)
            handle.rebuild(policy)
            for j in list(pending):
                pending[j] = self._submit_guarded(handle, fn, tasks[j], attempts[j])

        def give_up(index: int, error_type: str, exc: Optional[BaseException]) -> None:
            failures.append(self._incident(fn, tasks[index], attempts[index], error_type, exc))
            del pending[index]

        def recover_broken_pool(index: int, exc: Optional[BaseException]) -> None:
            # A dead worker breaks every pending future at once and
            # hides which task it was running, so every incomplete
            # task pays an attempt — that is also what stops a
            # first-attempt-keyed kill injector from re-firing.
            for j in list(pending):
                attempts[j] += 1
                if attempts[j] > policy.max_retries:
                    give_up(j, "BrokenPool", exc)
            if pending:
                if index in pending:
                    self._incident(fn, tasks[index], attempts[index], "BrokenPool", exc)
                resubmit_incomplete()

        while pending:
            index = min(pending)
            future = pending[index]
            if future is None:
                recover_broken_pool(index, None)
                continue
            try:
                results[index] = future.result(timeout=policy.timeout_s)
                del pending[index]
            except FutureTimeout as exc:
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    give_up(index, "Timeout", exc)
                else:
                    self._incident(fn, tasks[index], attempts[index], "Timeout", exc)
                resubmit_incomplete()
            except BrokenExecutor as exc:
                recover_broken_pool(index, exc)
            except Exception as exc:
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    give_up(index, type(exc).__name__, exc)
                    continue
                self._incident(fn, tasks[index], attempts[index], type(exc).__name__, exc)
                time.sleep(policy.backoff_for(attempts[index]))
                pending[index] = self._submit_guarded(handle, fn, tasks[index], attempts[index])
        if failures:
            raise SweepError(
                f"{len(failures)} sweep task(s) failed after retries: "
                + ", ".join(f.label for f in failures),
                failures,
            )
        return results

    # -- §8 prediction sweeps ----------------------------------------------

    def forecast_days(
        self,
        days: Sequence[int],
        history_weeks: int = 4,
        reduced: bool = True,
        pool: Optional[_PoolHandle] = None,
    ) -> Dict[int, DemandTable]:
        """Parallel phase 1: per-day Holt-Winters forecast tables."""
        tasks = [(day, history_weeks, reduced) for day in days]
        return dict(self.map_days(_forecast_day_task, tasks, pool=pool))

    def _plan_backend(
        self,
        demands: Dict[int, DemandTable],
        lp_options: Optional[JointLpOptions],
        pool: Optional[_PoolHandle],
    ) -> Tuple[PlanBackend, Callable[[int], float]]:
        """Build this runner's planner backend for a set of day tables.

        Returns the backend (covering the union of the days' configs)
        plus the per-day E2E bound resolver.  With the decomposed spec
        and a live pool, the backend's slot subproblems fan out through
        :func:`_plan_slot_task` (worker-side hot per-slot caches);
        otherwise slots solve serially inside the backend.
        """
        from .titan_next import day_e2e_bound_ms

        configs = sorted({c for table in demands.values() for _, c in table}, key=str)
        if not configs:
            raise ValueError("no predicted demand across the requested days")
        base_options = lp_options if lp_options is not None else JointLpOptions()

        slot_map: Optional[SlotMap] = None
        if self.planner.backend == "decomposed" and pool is not None:
            signature = tuple(configs)

            def fan_slots(tasks: List[SlotTask]) -> List[List[Tuple[int, CallConfig, str, str]]]:
                wrapped = [
                    (signature, base_options, t, slot_demand, bound)
                    for t, slot_demand, bound in tasks
                ]
                return self.map_days(_plan_slot_task, wrapped, pool=pool)

            slot_map = fan_slots

        backend = self.planner.build(
            self.setup.scenario, configs, options=base_options, slot_map=slot_map
        )

        def bound_for(day: int) -> float:
            return lp_options.e2e_bound_ms if lp_options is not None else day_e2e_bound_ms(day)

        return backend, bound_for

    def plan_days(
        self,
        predictions: Dict[int, DemandTable],
        lp_options: Optional[JointLpOptions] = None,
        pool: Optional[_PoolHandle] = None,
    ) -> Dict[int, AssignmentTable]:
        """Phase 2: the planning loop, through this runner's backend.

        The monolithic backend is one
        :class:`~repro.core.titan_next.PlanCache` over the union of
        predicted configs: each day refreshes the C1/C4 RHS and
        hot-starts HiGHS from the previous day's optimal basis — which
        is why the day loop stays in the parent process, in day order.
        The decomposed backend shards each day by slot (fanned over
        ``pool`` when given) and reconciles with an exact coupling
        pass.  When ``lp_options`` is omitted each day gets the §7.5
        weekday/weekend E2E bound.
        """
        backend, bound_for = self._plan_backend(predictions, lp_options, pool)
        plans: Dict[int, AssignmentTable] = {}
        for day, prediction in predictions.items():
            plans[day] = self._solve_plan(backend, bound_for, prediction, day)
        return plans

    @staticmethod
    def _solve_plan(
        backend: PlanBackend,
        bound_for: Callable[[int], float],
        demand: DemandTable,
        day: int,
        label: str = "planning",
    ) -> AssignmentTable:
        """One day's plan through an already-built backend."""
        solved = backend.solve_day(demand, e2e_bound_ms=bound_for(day))
        if not solved.is_optimal:
            raise RuntimeError(f"Titan-Next {label} LP failed for day {day}: {solved.status}")
        return solved.assignment

    def replay_days(
        self,
        days: Sequence[int],
        plans: Optional[Dict[int, AssignmentTable]] = None,
        policies: Sequence[str] = ("titan-next",),
        seed: int = 71,
        reduced: bool = True,
        evaluate: bool = False,
        pool: Optional[_PoolHandle] = None,
        return_tables: Optional[bool] = None,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """Parallel phase 3: per-day trace synthesis + controller replay.

        Each worker synthesizes the day's :class:`CallTable` once (one
        generator per worker, reused across its days) and feeds it to
        every requested controller's ``process_table``.  With
        ``evaluate=True`` the worker also scores each result through
        ``evaluate_batch`` (worker-local ``Scenario.eval_tables``) and
        attaches it as ``PredictionDayResult.evaluation``.  In compact
        mode (see ``return_tables`` / the runner default) workers ship
        :class:`DaySummary` rows instead of full batches and the
        returned values are :class:`SummaryDayResult` wrappers.
        """
        plans = plans if plans is not None else {}
        chosen = tuple(policies)
        compact = self._compact(return_tables)
        tasks = [(day, plans.get(day), chosen, seed, reduced, evaluate, compact) for day in days]
        gathered = dict(self.map_days(_replay_day_task, tasks, pool=pool))
        if not compact:
            return gathered
        return {day: self._wrap_results(day, results, plans) for day, results in gathered.items()}

    def run_prediction_window(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
        chunk_days: Optional[int] = None,
        return_tables: Optional[bool] = None,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """The §8 experiment for every (day, policy) in a window.

        Per (day, policy) the output is identical to
        :func:`~repro.core.titan_next.run_prediction_day` — same trace,
        same seeds, same plan optimum — for any worker count, any
        ``chunk_days``, and either result mode.  This is
        :meth:`iter_days` drained into a dict; pass ``chunk_days`` (or
        set it on the runner) to bound in-flight work, or iterate
        :meth:`iter_days` directly to also bound *held* results.
        """
        return dict(
            self.iter_days(
                days,
                policies=policies,
                history_weeks=history_weeks,
                lp_options=lp_options,
                reduced=reduced,
                seed=seed,
                evaluate=evaluate,
                chunk_days=chunk_days,
                return_tables=return_tables,
            )
        )

    def iter_days(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
        chunk_days: Optional[int] = None,
        return_tables: Optional[bool] = None,
    ) -> Iterator[Tuple[int, Dict[str, "PredictionDayResult"]]]:
        """Stream the §8 window as ``(day, {policy: result})`` pairs,
        in day order, ``chunk_days`` days at a time.

        The streaming contract: results are byte-identical to the
        monolithic window for every chunk size.  That holds because
        chunking never splits the planning *structure* — forecasts for
        the whole window are computed up front (demand tables are
        small), one planner backend is built over the full-window
        config union, and the day loop walks it in day order across
        chunk boundaries — so the hot-start chain, and therefore every
        plan, is the monolithic one.  Only plan-solving, replay
        fan-out, and result materialization proceed O(chunk) at a
        time: a 52-week sweep holds one chunk of day results (plus the
        window's forecast tables) instead of every ``CallTable`` in
        the window.

        With the pipelined planner each chunk still overlaps planning
        with replay; chunks of 1 degrade to inline replay, so keep
        ``chunk_days >= workers`` when fan-out matters.
        """
        day_list = list(days)
        chosen = tuple(policies) if policies is not None else PREDICTION_POLICIES
        chunk = chunk_days if chunk_days is not None else self.chunk_days
        chunk = chunk if chunk is not None else (len(day_list) or 1)
        if chunk < 1:
            raise ValueError("chunk_days must be >= 1 (or None)")
        # One pool spans every phase and chunk: workers spawn (and
        # build their state) once, idling only through the short serial
        # planning stretches in between.
        with self.worker_pool(len(day_list)) as pool:
            if "titan-next" not in chosen:
                for start in range(0, len(day_list), chunk):
                    block = day_list[start : start + chunk]
                    results = self.replay_days(
                        block,
                        policies=chosen,
                        seed=seed,
                        reduced=reduced,
                        evaluate=evaluate,
                        pool=pool,
                        return_tables=return_tables,
                    )
                    yield from ((day, results[day]) for day in block)
                return
            predictions = self.forecast_days(
                day_list, history_weeks, reduced=reduced, pool=pool
            )
            backend, bound_for = self._plan_backend(predictions, lp_options, pool)
            for start in range(0, len(day_list), chunk):
                block = day_list[start : start + chunk]
                if self.planner.pipelined and pool is not None:
                    results = self._replay_chunk_pipelined(
                        block, predictions, backend, bound_for, chosen,
                        seed, reduced, evaluate, return_tables, pool,
                    )
                else:
                    plans = {
                        day: self._solve_plan(backend, bound_for, predictions[day], day)
                        for day in block
                    }
                    results = self.replay_days(
                        block,
                        plans=plans,
                        policies=chosen,
                        seed=seed,
                        reduced=reduced,
                        evaluate=evaluate,
                        pool=pool,
                        return_tables=return_tables,
                    )
                yield from ((day, results[day]) for day in block)

    def _replay_chunk_pipelined(
        self,
        block: Sequence[int],
        predictions: Dict[int, DemandTable],
        backend: PlanBackend,
        bound_for: Callable[[int], float],
        policies: Tuple[str, ...],
        seed: int,
        reduced: bool,
        evaluate: bool,
        return_tables: Optional[bool],
        pool: _PoolHandle,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """Planning/replay pipelining: plan day ``d+1`` while the pool
        replays day ``d``.

        The planner runs in the caller's thread in day order — the same
        hot-start chain, hence the same plans, as the phase-alternating
        path — but each day's replay is *submitted* the moment its plan
        is solved, so the pool chews replay (and, for the decomposed
        backend, slot-subproblem) tasks while the next day's LP solves.
        Results are gathered at the end of the chunk, keyed by day.
        """
        compact = self._compact(return_tables)
        plans: Dict[int, AssignmentTable] = {}
        tasks: List[Tuple[int, AssignmentTable, Tuple[str, ...], int, bool, bool, bool]] = []
        pending: Dict[int, Optional["Future[object]"]] = {}
        for day in block:
            plans[day] = self._solve_plan(backend, bound_for, predictions[day], day)
            task = (day, plans[day], policies, seed, reduced, evaluate, compact)
            pending[len(tasks)] = self._submit_guarded(pool, _replay_day_task, task, 0)
            tasks.append(task)
        gathered = dict(self._gather(_replay_day_task, tasks, pool, pending=pending))
        if not compact:
            return gathered
        return {day: self._wrap_results(day, results, plans) for day, results in gathered.items()}

    def run_prediction_sweep(
        self,
        days: Sequence[int],
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
        chunk_days: Optional[int] = None,
        return_tables: Optional[bool] = None,
    ) -> Dict[int, "PredictionDayResult"]:
        """Titan-Next only over a run of days (the classic §8 sweep)."""
        window = self.run_prediction_window(
            days,
            policies=("titan-next",),
            history_weeks=history_weeks,
            lp_options=lp_options,
            reduced=reduced,
            seed=seed,
            evaluate=evaluate,
            chunk_days=chunk_days,
            return_tables=return_tables,
        )
        return {day: results["titan-next"] for day, results in window.items()}

    # -- §7 oracle sweeps ----------------------------------------------------

    def run_oracle_days(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        use_plan_cache: bool = True,
        chunk_days: Optional[int] = None,
    ) -> Dict[int, Dict[str, "EvaluationResult"]]:
        """The §7 oracle comparison over a run of days.

        Demand sampling and (with ``use_plan_cache``) the Titan-Next
        cached-LP solves run serially in the parent; baseline policy
        assignment and all ``evaluate_batch`` scoring fan out per day.
        Identical to a :func:`~repro.core.titan_next.run_oracle_day`
        loop for any worker count and any ``chunk_days``: chunking only
        bounds how many days are planned and in flight at once — the
        cached-LP hot-start chain still walks the full window's one
        backend in day order.
        """
        from .titan_next import oracle_demand_for_day

        day_list = list(days)
        chosen = tuple(policies) if policies is not None else ("wrr", "titan", "lf", "titan-next")
        chunk = chunk_days if chunk_days is not None else self.chunk_days
        chunk = chunk if chunk is not None else (len(day_list) or 1)
        if chunk < 1:
            raise ValueError("chunk_days must be >= 1 (or None)")
        demands = {day: oracle_demand_for_day(self.setup, day) for day in day_list}
        if not (use_plan_cache and "titan-next" in chosen and day_list):
            tasks: List[OracleTask] = [(day, demands[day], None, chosen) for day in day_list]
            return dict(self.map_days(_oracle_day_task, tasks))

        # One pool spans planning and scoring, so the pipelined mode
        # can overlap the two and the decomposed backend can fan its
        # slot subproblems over the same workers.
        out: Dict[int, Dict[str, "EvaluationResult"]] = {}
        with self.worker_pool(len(day_list)) as pool:
            backend, bound_for = self._plan_backend(demands, None, pool)
            for start in range(0, len(day_list), chunk):
                block = day_list[start : start + chunk]
                if self.planner.pipelined and pool is not None:
                    tasks = []
                    pipelined_pending: Dict[int, Optional["Future[object]"]] = {}
                    for day in block:
                        assignment = self._solve_plan(
                            backend, bound_for, demands[day], day, label="cached"
                        )
                        task = (day, demands[day], assignment, chosen)
                        pipelined_pending[len(tasks)] = self._submit_guarded(
                            pool, _oracle_day_task, task, 0
                        )
                        tasks.append(task)
                    out.update(
                        dict(
                            self._gather(
                                _oracle_day_task, tasks, pool, pending=pipelined_pending
                            )
                        )
                    )
                    continue
                tn_plans = {
                    day: self._solve_plan(backend, bound_for, demands[day], day, label="cached")
                    for day in block
                }
                tasks = [(day, demands[day], tn_plans.get(day), chosen) for day in block]
                out.update(dict(self.map_days(_oracle_day_task, tasks, pool=pool)))
        return out
