"""Parallel sweep engine: fan §7/§8 day work across workers.

A multi-day evaluation sweep has exactly one inherently sequential
piece: the planning loop.  ``PlanCache(reuse_basis=True)`` keeps one
HiGHS model hot and hot-starts each day's solve from the previous day's
optimal basis, so day ``d+1``'s solve depends on day ``d`` having run.
Everything else — Holt-Winters forecasting, trace synthesis, controller
replay, and §7.1 scoring — is a pure function of ``(setup, day, seed)``
because every random draw in the pipeline is counter-based Philox keyed
on ``(seed, config, slot)``: no generator state crosses day boundaries,
so per-day work can run in any order, on any worker, and reproduce the
serial loop byte for byte.

:class:`SweepRunner` splits a sweep accordingly:

1. **parallel forecast phase** — per-day predicted demand tables fanned
   over the pool;
2. **serial planning phase** — the shared :class:`PlanCache` loop in
   the parent process (basis hot-start is the whole point of it);
3. **parallel replay phase** — per-day trace synthesis +
   ``process_table`` controller replay + (optionally)
   ``evaluate_batch`` scoring fanned over the pool.

Workers are process-backed by default (``backend="process"``); each
worker rebuilds its :class:`EuropeSetup` from one pickled payload in
the pool initializer, so ``Scenario.eval_tables`` / trace-generator
caches are worker-local (the id-keyed evaluation cache must never
travel between processes — :class:`~repro.core.scenario.Scenario`
drops it on pickle).  ``backend="thread"`` shares the parent's setup
(useful when the replay is numpy-dominated or processes are
unavailable); ``workers=1`` runs inline and *is* the pinned serial
reference path.

**Fault tolerance.** Long sweeps die to the environment, not the math:
a worker OOM-killed mid-replay collapses the whole
``ProcessPoolExecutor`` (``BrokenProcessPool``), one hung solve stalls
the window forever, and a transient error in day 93 of a 100-day sweep
throws away 92 finished days.  The runner therefore gathers pooled
results through a supervision loop governed by :class:`FaultPolicy`:

* a task that *raises* is retried in place with exponential backoff,
  up to ``max_retries`` — retries are safe because per-day work is a
  pure function of the task tuple (the Philox counter-keying
  contract), so a retried day is byte-identical to a first-try day;
* a task that exceeds ``timeout_s`` has its pool killed and rebuilt,
  and every incomplete task is resubmitted (only the hung task's
  attempt counter advances);
* a broken pool (worker killed by a signal/OOM) is rebuilt and all
  incomplete tasks resubmitted, up to ``max_pool_rebuilds`` per pool;
* tasks that exhaust their retries are reported as structured
  :class:`SweepFailure` records on the raised :class:`SweepError` —
  naming the phase, day, attempt count, and last error.

``inject_fault=`` accepts a picklable callable (see
:class:`KillWorkerFault`, :class:`HangFault`) invoked worker-side
before every pooled task — the deterministic chaos hook the recovery
tests drive.  The inline ``workers=1`` path never injects and never
retries: it *is* the reference the recovered runs are compared to.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..workload.configs import CallConfig
from ..workload.traces import TraceGenerator
from .lp import AssignmentTable, JointLpOptions
from .planner import PlanBackend, PlannerSpec, resolve_planner, slot_support_keys

#: Demand/forecast table: ``(slot of day, config) -> call count``.
DemandTable = Dict[Tuple[int, CallConfig], float]

#: Baseline first-joiner policies every §8 window can replay.
PREDICTION_POLICIES: Tuple[str, ...] = ("wrr", "lf", "titan", "titan-next")


def available_workers() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _resolve_workers(workers) -> int:
    if workers is None or workers == "auto":
        return available_workers()
    count = int(workers)
    if count < 1:
        raise ValueError("workers must be >= 1 (or 'auto')")
    return count


# ---------------------------------------------------------------------------
# Fault tolerance: policy, failure reports, chaos injectors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPolicy:
    """Supervision knobs for pooled sweep phases.

    ``timeout_s`` bounds how long the gatherer waits on any one task's
    result once it becomes the next task in order; ``None`` disables
    the hang watchdog.  ``max_retries`` is per task (exceptions and
    hangs both advance the attempt counter); ``max_pool_rebuilds``
    bounds kill-and-respawn cycles per pool, so a deterministic
    crasher cannot respawn workers forever.
    """

    max_retries: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_multiplier ** max(attempt - 1, 0)


@dataclass(frozen=True)
class SweepFailure:
    """Structured record of one task incident.

    Incidents that were *recovered* (a retry succeeded, a pool rebuild
    carried on) land in :attr:`SweepRunner.fault_log`; incidents that
    exhausted the retry budget ride the raised :class:`SweepError` as
    its ``failures``.
    """

    kind: str  #: task family: "forecast", "replay", "plan-slot", "oracle"
    label: str  #: human-readable task identity, e.g. "replay:day=31"
    attempts: int  #: attempts so far for this task (1 + retries)
    error_type: str  #: the exception's class name (or "Timeout"/"BrokenPool")
    message: str  #: the exception's str()
    traceback: str = ""  #: formatted traceback, when one exists


class SweepError(RuntimeError):
    """A sweep phase gave up; ``failures`` lists the dead tasks."""

    def __init__(self, message: str, failures: Sequence[SweepFailure] = ()) -> None:
        super().__init__(message)
        self.failures: List[SweepFailure] = list(failures)


def _task_day(task) -> Optional[int]:
    """The day a task tuple targets, when its first element is one."""
    if isinstance(task, tuple) and task and isinstance(task[0], int):
        return task[0]
    return None


@dataclass(frozen=True)
class KillWorkerFault:
    """Chaos injector: hard-kill the worker running a chosen task.

    ``os._exit`` mimics an OOM-kill/SIGKILL — no cleanup, no exception,
    the pool just loses a process and every pending future breaks.
    Fires once (attempt 0 only), so the rebuilt pool's resubmission
    completes.  Process backend only: on the thread backend this would
    take down the parent.
    """

    day: int
    kind: str = "replay"
    exit_code: int = 13

    def __call__(self, kind: str, task, attempt: int) -> None:
        if kind == self.kind and attempt == 0 and _task_day(task) == self.day:
            os._exit(self.exit_code)


@dataclass(frozen=True)
class FlakyTaskFault:
    """Chaos injector: raise a transient error on a task's first attempt.

    The mildest failure mode — the worker survives, the pool survives,
    only the task dies — exercising the in-place retry-with-backoff
    path rather than a pool rebuild.
    """

    day: int
    kind: str = "replay"
    message: str = "injected transient failure"

    def __call__(self, kind: str, task, attempt: int) -> None:
        if kind == self.kind and attempt == 0 and _task_day(task) == self.day:
            raise RuntimeError(f"{self.message} (day={self.day})")


@dataclass(frozen=True)
class HangFault:
    """Chaos injector: stall a chosen task far past any sane timeout.

    Sleeps ``seconds`` on attempt 0, simulating a wedged solver or
    deadlocked worker; the supervision loop's ``timeout_s`` watchdog
    must kill the pool and the resubmitted attempt runs clean.  The
    sleep is finite so an un-watched run still terminates.
    """

    day: int
    seconds: float = 60.0
    kind: str = "replay"

    def __call__(self, kind: str, task, attempt: int) -> None:
        if kind == self.kind and attempt == 0 and _task_day(task) == self.day:
            time.sleep(self.seconds)


# ---------------------------------------------------------------------------
# Worker-side state and task functions
# ---------------------------------------------------------------------------


class _WorkerState:
    """Per-worker context: the setup plus per-seed trace generators.

    The generator cache is what turns "fresh :class:`TraceGenerator`
    per day" into "one generator per worker": its per-config Philox
    keys and first-joiner tables are built once and reused for every
    day the worker replays (streams are (config, slot)-addressed, so
    sharing the generator across days changes nothing).
    """

    def __init__(self, setup) -> None:
        self.setup = setup
        self._generators: Dict[int, TraceGenerator] = {}
        self._slot_planners: Dict[Tuple, object] = {}

    def trace_generator(self, seed: int) -> TraceGenerator:
        generator = self._generators.get(seed)
        if generator is None:
            generator = TraceGenerator(
                self.setup.demand, top_n_configs=self.setup.top_n_configs, seed=seed
            )
            self._generators[seed] = generator
        return generator

    def slot_planner(self, configs: Tuple[CallConfig, ...], options: JointLpOptions, slot: int):
        """This worker's hot single-slot :class:`PlanCache` for ``slot``.

        Keyed on the full planning signature so a worker re-used across
        sweeps (or config unions) never serves a stale structure; the
        persistent per-slot session hot-starts across the days the
        worker plans.
        """
        from .titan_next import PlanCache

        key = (configs, options, slot)
        cache = self._slot_planners.get(key)
        if cache is None:
            cache = PlanCache(
                self.setup.scenario, list(configs), slots=[slot], options=options, reuse_basis=True
            )
            self._slot_planners[key] = cache
        return cache


#: Process-pool worker context, set once by :func:`_init_worker`.
_WORKER_STATE: Optional[_WorkerState] = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: build this worker's setup from the pickle.

    Run once per worker process.  Unpickling (rather than inheriting a
    forked reference) guarantees the worker owns fresh ``Scenario``
    caches regardless of the multiprocessing start method.
    """
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(pickle.loads(payload))


def _state_or_worker(state: Optional[_WorkerState]) -> _WorkerState:
    resolved = state if state is not None else _WORKER_STATE
    if resolved is None:
        raise RuntimeError("sweep task invoked outside a SweepRunner pool")
    return resolved


def _forecast_day_task(task, state: Optional[_WorkerState] = None):
    """(day, history_weeks, reduced) -> (day, predicted demand table)."""
    from .titan_next import predicted_demand_for_day

    day, history_weeks, reduced = task
    worker = _state_or_worker(state)
    return day, predicted_demand_for_day(worker.setup, day, history_weeks, reduced=reduced)


def _replay_day_task(task, state: Optional[_WorkerState] = None):
    """Replay one §8 day: synthesize the trace once, run each policy.

    ``task`` is ``(day, plan_assignment, policies, seed, reduced,
    evaluate)``; returns ``(day, {policy: PredictionDayResult})``,
    identical to what :func:`~repro.core.titan_next.run_prediction_day`
    produces for the same day and seed.
    """
    from .titan_next import _prediction_day_result

    day, plan_assignment, policies, seed, reduced, evaluate = task
    worker = _state_or_worker(state)
    table = worker.trace_generator(seed).table_for_day(day)
    results = {}
    for name in policies:
        result = _prediction_day_result(
            worker.setup, name, table, seed, reduced, plan_assignment=plan_assignment
        )
        if evaluate:
            result.evaluation = result.evaluate(worker.setup.scenario)
        results[name] = result
    return day, results


def _plan_slot_task(task, state: Optional[_WorkerState] = None):
    """Solve one slot subproblem of the decomposed planner.

    ``task`` is ``(configs, options, slot, slot_demand, bound)``;
    returns the slot optimum's support keys (the columns the coupling
    pass seeds its restricted master with).  The worker keeps one hot
    per-slot cache per planning signature, so a day's slot solve
    hot-starts from the previous day the worker planned that slot.
    """
    configs, options, slot, slot_demand, bound = task
    worker = _state_or_worker(state)
    return slot_support_keys(worker.slot_planner(configs, options, slot), slot_demand, bound)


def _oracle_day_task(task, state: Optional[_WorkerState] = None):
    """Score one §7 oracle day for a set of policies.

    ``task`` is ``(day, demand, titan_next_assignment, policies)``;
    ``titan_next_assignment`` carries the serial planning phase's
    cached-LP optimum (``None`` lets the worker solve a fresh LP, the
    ``use_plan_cache=False`` path).
    """
    from .titan_next import run_oracle_day

    day, demand, tn_assignment, policies = task
    worker = _state_or_worker(state)
    return day, run_oracle_day(
        worker.setup,
        day,
        policies=policies,
        demand=demand,
        titan_next_assignment=tn_assignment,
    )


#: Task-family names for failure reports and chaos-injector routing.
_KIND_OF: Dict[Callable, str] = {
    _forecast_day_task: "forecast",
    _replay_day_task: "replay",
    _plan_slot_task: "plan-slot",
    _oracle_day_task: "oracle",
}


def _guarded_task(payload, state: Optional[_WorkerState] = None):
    """Worker-side shim every pooled task runs through.

    ``payload`` is ``(fn, kind, task, attempt, inject)``: the injector
    (if any) fires first — it may kill the worker, hang, or raise —
    then the real task function runs.  Keeping the shim module-level
    keeps the submission picklable for the process backend.
    """
    fn, kind, task, attempt, inject = payload
    if inject is not None:
        inject(kind, task, attempt)
    return fn(task, state=state)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class _PoolHandle:
    """A rebuildable executor: what :meth:`SweepRunner.worker_pool` yields.

    Owns the live executor plus everything needed to respawn it (the
    pickled setup payload for process pools), so the supervision loop
    can kill a broken/hung pool and carry on with the same handle.
    Callers treat it as an executor — ``submit`` is the whole surface.
    """

    def __init__(self, backend: str, workers: int, mp_context, payload: Optional[bytes]) -> None:
        self.backend = backend
        self.workers = workers
        self.mp_context = mp_context
        self._payload = payload
        self.rebuilds = 0
        self._pool = self._spawn()

    def _spawn(self):
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(self._payload,),
        )

    def submit(self, fn, *args):
        return self._pool.submit(fn, *args)

    def kill(self) -> None:
        """Tear the executor down without waiting on stuck work.

        Process workers are terminated outright (the only way to
        un-wedge a hung task); thread workers cannot be killed, so a
        hung thread is abandoned to finish its (finite) sleep while
        the handle moves on to a fresh executor.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def rebuild(self, policy: FaultPolicy) -> None:
        """Kill and respawn, enforcing the policy's rebuild budget."""
        self.rebuilds += 1
        if self.rebuilds > policy.max_pool_rebuilds:
            raise SweepError(
                f"sweep pool broke {self.rebuilds} times "
                f"(max_pool_rebuilds={policy.max_pool_rebuilds}); giving up"
            )
        self.kill()
        self._pool = self._spawn()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()


class SweepRunner:
    """Multi-day §7/§8 sweeps with a worker pool over the per-day phase.

    ``workers=1`` (the default) runs everything inline — that *is* the
    serial reference; any higher worker count must reproduce it byte
    for byte, which the counter-based randomness guarantees and
    ``tests/test_sweep_parallel.py`` pins.

    ``backend`` is ``"process"`` (default for ``workers > 1``),
    ``"thread"``, or ``"serial"``; ``workers="auto"`` uses the CPUs the
    process is allowed to run on.  The runner itself is cheap — it owns
    no pool between calls, so it can be kept around or rebuilt freely.

    ``planner`` picks the planning backend and orchestration (see
    :mod:`repro.core.planner`): ``"monolithic"`` (default, the pinned
    hot-started loop), ``"decomposed"`` (slot-sharded solves fanned
    over the pool + an exact coupling pass), and/or ``"pipelined"``
    (plan day ``d+1`` in the caller's thread while the pool replays day
    ``d``, instead of strictly alternating phases).  Every combination
    reproduces the monolithic plans — bit-exactly for monolithic
    specs, to solver precision for decomposed ones.

    ``fault_policy`` governs the pooled phases' supervision loop
    (retries, hang timeout, pool rebuilds; see :class:`FaultPolicy`)
    and ``inject_fault`` is the worker-side chaos hook — recovered
    incidents accumulate in :attr:`fault_log`, unrecoverable ones
    raise :class:`SweepError`.  Because per-day tasks are pure
    functions of their tuples, a sweep that survives a killed or hung
    worker still reproduces the serial reference byte for byte.
    """

    def __init__(
        self,
        setup,
        workers=1,
        backend: Optional[str] = None,
        mp_context=None,
        planner=None,
        fault_policy: Optional[FaultPolicy] = None,
        inject_fault: Optional[Callable] = None,
    ) -> None:
        self.setup = setup
        self.workers = _resolve_workers(workers)
        if backend is None:
            backend = "process" if self.workers > 1 else "serial"
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown sweep backend {backend!r}")
        if self.workers == 1:
            backend = "serial"
        self.backend = backend
        self.mp_context = mp_context
        self.planner: PlannerSpec = resolve_planner(planner)
        #: Supervision knobs for pooled phases; the serial path ignores
        #: them (no pool, no retries — it is the pinned reference).
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        #: Worker-side chaos hook ``(kind, task, attempt) -> None``;
        #: must pickle for the process backend.  Never fires inline.
        self.inject_fault = inject_fault
        #: Structured reports of every recovered incident this runner
        #: has seen (successful retries included), newest last.
        self.fault_log: List[SweepFailure] = []
        # Inline/thread execution state: shares the caller's setup, so
        # serial sweeps also reuse one TraceGenerator across days.
        self._state = _WorkerState(setup)

    # -- pool plumbing -----------------------------------------------------

    @contextmanager
    def worker_pool(self, tasks_hint: int):
        """One rebuildable pool shared by several :meth:`map_days` calls.

        A multi-phase sweep (forecast fan-out, serial planning, replay
        fan-out) should spawn its process workers — and unpickle the
        setup payload in each — once per sweep, not once per phase;
        pass the yielded :class:`_PoolHandle` to each phase.  Yields
        ``None`` (inline execution) for serial runners or single-task
        hints.
        """
        if self.backend == "serial" or tasks_hint <= 1:
            yield None
            return
        workers = min(self.workers, tasks_hint)
        payload = pickle.dumps(self.setup) if self.backend == "process" else None
        handle = _PoolHandle(self.backend, workers, self.mp_context, payload)
        try:
            yield handle
        finally:
            handle.shutdown()

    def map_days(self, fn: Callable, tasks: Sequence, pool=None) -> List:
        """Run ``fn`` over per-day tasks, in task order.

        Tasks must be independent (the per-day §7/§8 work is, by the
        Philox counter-keying contract) — which is also what makes the
        fault path sound: a retried or resubmitted task reproduces its
        first-attempt result bit for bit.  A single task — or a serial
        runner — executes inline with no supervision; ``pool`` reuses
        a handle from :meth:`worker_pool` instead of opening one per
        call.
        """
        tasks = list(tasks)
        if self.backend == "serial" or len(tasks) <= 1:
            return [fn(task, state=self._state) for task in tasks]
        if pool is not None:
            return self._gather(fn, tasks, pool)
        with self.worker_pool(len(tasks)) as opened:
            return self._gather(fn, tasks, opened)

    # -- supervision --------------------------------------------------------

    def _submit_guarded(self, handle: _PoolHandle, fn: Callable, task, attempt: int):
        """Submit one task through the worker-side guard shim.

        Returns ``None`` when the pool is already broken at submit time
        (a fast-dying worker can kill it mid-batch, making ``submit``
        itself raise) — the marker routes the task into
        :meth:`_gather`'s broken-pool recovery instead of letting the
        synchronous ``BrokenProcessPool`` escape the supervisor.
        """
        payload = (fn, _KIND_OF.get(fn, getattr(fn, "__name__", "task")), task, attempt, self.inject_fault)
        try:
            if handle.backend == "thread":
                return handle.submit(_guarded_task, payload, self._state)
            return handle.submit(_guarded_task, payload)
        except BrokenExecutor:
            return None

    @staticmethod
    def _task_label(fn: Callable, task) -> str:
        kind = _KIND_OF.get(fn, getattr(fn, "__name__", "task"))
        day = _task_day(task)
        return f"{kind}:day={day}" if day is not None else kind

    def _incident(self, fn: Callable, task, attempts: int, error_type: str, exc: Optional[BaseException]) -> SweepFailure:
        record = SweepFailure(
            kind=_KIND_OF.get(fn, getattr(fn, "__name__", "task")),
            label=self._task_label(fn, task),
            attempts=attempts,
            error_type=error_type,
            message=str(exc) if exc is not None else "",
            traceback="".join(traceback_module.format_exception(exc)) if exc is not None else "",
        )
        self.fault_log.append(record)
        return record

    def _harvest(self, pending: Dict[int, object], results: List) -> None:
        """Bank every already-finished successful result in ``pending``.

        Run before a pool kill: futures that completed before the kill
        keep their results, and banking them means a rebuild only
        re-runs genuinely incomplete days.  ``None`` entries mark tasks
        whose submission already found the pool broken.
        """
        for index in [i for i, f in pending.items() if f is not None and f.done()]:
            future = pending[index]
            if future.cancelled() or future.exception() is not None:
                continue
            results[index] = future.result()
            del pending[index]

    def _gather(self, fn: Callable, tasks: Sequence, handle: _PoolHandle, pending=None) -> List:
        """The supervision loop: gather pooled results, surviving faults.

        Results are collected in task order.  A task exception retries
        in place with backoff; a hang (``FaultPolicy.timeout_s``) or a
        broken pool kills and rebuilds the executor and resubmits the
        incomplete tail; tasks out of retries are reported together on
        a :class:`SweepError` once everything else has finished.
        ``pending`` lets pipelined callers hand in futures they already
        submitted (index-keyed, aligned with ``tasks``).
        """
        policy = self.fault_policy
        n = len(tasks)
        results: List = [None] * n
        attempts = [0] * n
        failures: List[SweepFailure] = []

        if pending is None:
            pending = {i: self._submit_guarded(handle, fn, tasks[i], 0) for i in range(n)}

        def resubmit_incomplete() -> None:
            self._harvest(pending, results)
            handle.rebuild(policy)
            for j in list(pending):
                pending[j] = self._submit_guarded(handle, fn, tasks[j], attempts[j])

        def give_up(index: int, error_type: str, exc: Optional[BaseException]) -> None:
            failures.append(self._incident(fn, tasks[index], attempts[index], error_type, exc))
            del pending[index]

        def recover_broken_pool(index: int, exc: Optional[BaseException]) -> None:
            # A dead worker breaks every pending future at once and
            # hides which task it was running, so every incomplete
            # task pays an attempt — that is also what stops a
            # first-attempt-keyed kill injector from re-firing.
            for j in list(pending):
                attempts[j] += 1
                if attempts[j] > policy.max_retries:
                    give_up(j, "BrokenPool", exc)
            if pending:
                if index in pending:
                    self._incident(fn, tasks[index], attempts[index], "BrokenPool", exc)
                resubmit_incomplete()

        while pending:
            index = min(pending)
            future = pending[index]
            if future is None:
                recover_broken_pool(index, None)
                continue
            try:
                results[index] = future.result(timeout=policy.timeout_s)
                del pending[index]
            except FutureTimeout as exc:
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    give_up(index, "Timeout", exc)
                else:
                    self._incident(fn, tasks[index], attempts[index], "Timeout", exc)
                resubmit_incomplete()
            except BrokenExecutor as exc:
                recover_broken_pool(index, exc)
            except Exception as exc:
                attempts[index] += 1
                if attempts[index] > policy.max_retries:
                    give_up(index, type(exc).__name__, exc)
                    continue
                self._incident(fn, tasks[index], attempts[index], type(exc).__name__, exc)
                time.sleep(policy.backoff_for(attempts[index]))
                pending[index] = self._submit_guarded(handle, fn, tasks[index], attempts[index])
        if failures:
            raise SweepError(
                f"{len(failures)} sweep task(s) failed after retries: "
                + ", ".join(f.label for f in failures),
                failures,
            )
        return results

    # -- §8 prediction sweeps ----------------------------------------------

    def forecast_days(
        self, days: Sequence[int], history_weeks: int = 4, reduced: bool = True, pool=None
    ) -> Dict[int, DemandTable]:
        """Parallel phase 1: per-day Holt-Winters forecast tables."""
        tasks = [(day, history_weeks, reduced) for day in days]
        return dict(self.map_days(_forecast_day_task, tasks, pool=pool))

    def _plan_backend(
        self,
        demands: Dict[int, DemandTable],
        lp_options: Optional[JointLpOptions],
        pool,
    ) -> Tuple[PlanBackend, Callable[[int], float]]:
        """Build this runner's planner backend for a set of day tables.

        Returns the backend (covering the union of the days' configs)
        plus the per-day E2E bound resolver.  With the decomposed spec
        and a live pool, the backend's slot subproblems fan out through
        :func:`_plan_slot_task` (worker-side hot per-slot caches);
        otherwise slots solve serially inside the backend.
        """
        from .titan_next import day_e2e_bound_ms

        configs = sorted({c for table in demands.values() for _, c in table}, key=str)
        if not configs:
            raise ValueError("no predicted demand across the requested days")
        base_options = lp_options if lp_options is not None else JointLpOptions()

        slot_map = None
        if self.planner.backend == "decomposed" and pool is not None:
            signature = tuple(configs)

            def slot_map(tasks):
                wrapped = [
                    (signature, base_options, t, slot_demand, bound)
                    for t, slot_demand, bound in tasks
                ]
                return self.map_days(_plan_slot_task, wrapped, pool=pool)

        backend = self.planner.build(
            self.setup.scenario, configs, options=base_options, slot_map=slot_map
        )

        def bound_for(day: int) -> float:
            return lp_options.e2e_bound_ms if lp_options is not None else day_e2e_bound_ms(day)

        return backend, bound_for

    def plan_days(
        self,
        predictions: Dict[int, DemandTable],
        lp_options: Optional[JointLpOptions] = None,
        pool=None,
    ) -> Dict[int, AssignmentTable]:
        """Phase 2: the planning loop, through this runner's backend.

        The monolithic backend is one
        :class:`~repro.core.titan_next.PlanCache` over the union of
        predicted configs: each day refreshes the C1/C4 RHS and
        hot-starts HiGHS from the previous day's optimal basis — which
        is why the day loop stays in the parent process, in day order.
        The decomposed backend shards each day by slot (fanned over
        ``pool`` when given) and reconciles with an exact coupling
        pass.  When ``lp_options`` is omitted each day gets the §7.5
        weekday/weekend E2E bound.
        """
        backend, bound_for = self._plan_backend(predictions, lp_options, pool)
        plans: Dict[int, AssignmentTable] = {}
        for day, prediction in predictions.items():
            solved = backend.solve_day(prediction, e2e_bound_ms=bound_for(day))
            if not solved.is_optimal:
                raise RuntimeError(f"Titan-Next planning LP failed for day {day}: {solved.status}")
            plans[day] = solved.assignment
        return plans

    def replay_days(
        self,
        days: Sequence[int],
        plans: Optional[Dict[int, AssignmentTable]] = None,
        policies: Sequence[str] = ("titan-next",),
        seed: int = 71,
        reduced: bool = True,
        evaluate: bool = False,
        pool=None,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """Parallel phase 3: per-day trace synthesis + controller replay.

        Each worker synthesizes the day's :class:`CallTable` once (one
        generator per worker, reused across its days) and feeds it to
        every requested controller's ``process_table``.  With
        ``evaluate=True`` the worker also scores each result through
        ``evaluate_batch`` (worker-local ``Scenario.eval_tables``) and
        attaches it as ``PredictionDayResult.evaluation``.
        """
        plans = plans if plans is not None else {}
        chosen = tuple(policies)
        tasks = [(day, plans.get(day), chosen, seed, reduced, evaluate) for day in days]
        return dict(self.map_days(_replay_day_task, tasks, pool=pool))

    def run_prediction_window(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """The §8 experiment for every (day, policy) in a window.

        Per (day, policy) the output is identical to
        :func:`~repro.core.titan_next.run_prediction_day` — same trace,
        same seeds, same plan optimum — for any worker count.
        """
        day_list = list(days)
        chosen = tuple(policies) if policies is not None else PREDICTION_POLICIES
        if "titan-next" not in chosen:
            return self.replay_days(
                day_list, policies=chosen, seed=seed, reduced=reduced, evaluate=evaluate
            )
        # One pool spans both parallel phases: workers spawn (and
        # unpickle the setup) once, idling only through the short
        # serial planning loop in between.
        with self.worker_pool(len(day_list)) as pool:
            predictions = self.forecast_days(
                day_list, history_weeks, reduced=reduced, pool=pool
            )
            if self.planner.pipelined and pool is not None:
                return self._pipelined_window(
                    day_list, predictions, chosen, lp_options, reduced, seed, evaluate, pool
                )
            plans = self.plan_days(predictions, lp_options=lp_options, pool=pool)
            return self.replay_days(
                day_list,
                plans=plans,
                policies=chosen,
                seed=seed,
                reduced=reduced,
                evaluate=evaluate,
                pool=pool,
            )

    def _pipelined_window(
        self,
        day_list: Sequence[int],
        predictions: Dict[int, DemandTable],
        policies: Tuple[str, ...],
        lp_options: Optional[JointLpOptions],
        reduced: bool,
        seed: int,
        evaluate: bool,
        pool,
    ) -> Dict[int, Dict[str, "PredictionDayResult"]]:
        """Planning/replay pipelining: plan day ``d+1`` while the pool
        replays day ``d``.

        The planner runs in the caller's thread in day order — the same
        hot-start chain, hence the same plans, as the phase-alternating
        path — but each day's replay is *submitted* the moment its plan
        is solved, so the pool chews replay (and, for the decomposed
        backend, slot-subproblem) tasks while the next day's LP solves.
        Results are gathered at the end, keyed and ordered by day.
        """
        backend, bound_for = self._plan_backend(predictions, lp_options, pool)
        tasks = []
        pending = {}
        for day in day_list:
            solved = backend.solve_day(predictions[day], e2e_bound_ms=bound_for(day))
            if not solved.is_optimal:
                raise RuntimeError(f"Titan-Next planning LP failed for day {day}: {solved.status}")
            task = (day, solved.assignment, policies, seed, reduced, evaluate)
            pending[len(tasks)] = self._submit_guarded(pool, _replay_day_task, task, 0)
            tasks.append(task)
        return dict(self._gather(_replay_day_task, tasks, pool, pending=pending))

    def run_prediction_sweep(
        self,
        days: Sequence[int],
        history_weeks: int = 4,
        lp_options: Optional[JointLpOptions] = None,
        reduced: bool = True,
        seed: int = 71,
        evaluate: bool = False,
    ) -> Dict[int, "PredictionDayResult"]:
        """Titan-Next only over a run of days (the classic §8 sweep)."""
        window = self.run_prediction_window(
            days,
            policies=("titan-next",),
            history_weeks=history_weeks,
            lp_options=lp_options,
            reduced=reduced,
            seed=seed,
            evaluate=evaluate,
        )
        return {day: results["titan-next"] for day, results in window.items()}

    # -- §7 oracle sweeps ----------------------------------------------------

    def run_oracle_days(
        self,
        days: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        use_plan_cache: bool = True,
    ) -> Dict[int, Dict[str, "EvaluationResult"]]:
        """The §7 oracle comparison over a run of days.

        Demand sampling and (with ``use_plan_cache``) the Titan-Next
        cached-LP solves run serially in the parent; baseline policy
        assignment and all ``evaluate_batch`` scoring fan out per day.
        Identical to a :func:`~repro.core.titan_next.run_oracle_day`
        loop for any worker count.
        """
        from .titan_next import oracle_demand_for_day

        day_list = list(days)
        chosen = tuple(policies) if policies is not None else ("wrr", "titan", "lf", "titan-next")
        demands = {day: oracle_demand_for_day(self.setup, day) for day in day_list}
        if not (use_plan_cache and "titan-next" in chosen and day_list):
            tasks = [(day, demands[day], None, chosen) for day in day_list]
            return dict(self.map_days(_oracle_day_task, tasks))

        # One pool spans planning and scoring, so the pipelined mode
        # can overlap the two and the decomposed backend can fan its
        # slot subproblems over the same workers.
        with self.worker_pool(len(day_list)) as pool:
            backend, bound_for = self._plan_backend(demands, None, pool)
            if self.planner.pipelined and pool is not None:
                tasks = []
                pending = {}
                for day in day_list:
                    solved = backend.solve_day(demands[day], e2e_bound_ms=bound_for(day))
                    if not solved.is_optimal:
                        raise RuntimeError(
                            f"Titan-Next cached LP failed for day {day}: {solved.status}"
                        )
                    task = (day, demands[day], solved.assignment, chosen)
                    pending[len(tasks)] = self._submit_guarded(pool, _oracle_day_task, task, 0)
                    tasks.append(task)
                return dict(self._gather(_oracle_day_task, tasks, pool, pending=pending))
            tn_plans: Dict[int, AssignmentTable] = {}
            for day in day_list:
                solved = backend.solve_day(demands[day], e2e_bound_ms=bound_for(day))
                if not solved.is_optimal:
                    raise RuntimeError(f"Titan-Next cached LP failed for day {day}: {solved.status}")
                tn_plans[day] = solved.assignment
            tasks = [(day, demands[day], tn_plans.get(day), chosen) for day in day_list]
            return dict(self.map_days(_oracle_day_task, tasks, pool=pool))
