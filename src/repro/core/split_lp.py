"""Per-participant split routing — the paper's future work, prototyped.

§6.3: "we don't split traffic from same participant across WAN and
Internet links ... Lastly, the LP assigns single routing option (either
WAN or Internet) for all participants of the same call.  Without this
condition, LP size increased substantially and could not finish in
timely manner.  We leave such traffic splitting for future work."

This module prototypes that future work with a formulation that stays
linear and compact: instead of enumerating per-call routing patterns,
it keeps one placement variable per (slot, config, DC) and one *routing
split* variable per (slot, config, DC, participant country):

    X[t,c,m]          calls of reduced config c at DC m in slot t
    Z[t,c,m,k] ≤ X    calls whose country-k participants ride the Internet

Internet capacity, WAN link loads, and the latency bound all become
linear in (X, Z).  The latency constraint necessarily weakens from
max-E2E to the *average participant round-trip* (max-E2E of a
mixed-routing call is not linear in the split), which we document as
part of the prototype's contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..net.latency import INTERNET, WAN
from ..solver.model import LinearProgram, LinExpr
from ..workload.configs import CallConfig
from .scenario import Scenario

SplitKey = Tuple[int, CallConfig, str]


@dataclass(frozen=True)
class SplitLpOptions:
    """Knobs for the split-routing prototype."""

    #: Bound on the demand-weighted average participant RTT (ms).
    avg_rtt_bound_ms: float = 80.0
    #: Locality tie-breaker (see JointLpOptions.locality_epsilon).
    locality_epsilon: float = 1e-6

    def __post_init__(self) -> None:
        if self.avg_rtt_bound_ms <= 0:
            raise ValueError("avg_rtt_bound_ms must be positive")


@dataclass
class SplitLpResult:
    """Solved split-routing plan."""

    status: str
    objective: Optional[float]
    #: (t, config, dc) -> calls placed.
    placement: Dict[SplitKey, float] = field(default_factory=dict)
    #: (t, config, dc, country) -> calls whose country-side rides Internet.
    internet_split: Dict[Tuple[int, CallConfig, str, str], float] = field(default_factory=dict)
    link_peaks: Dict[int, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def sum_of_peaks(self) -> float:
        return sum(self.link_peaks.values())

    def internet_share_of(self, t: int, config: CallConfig, dc: str, country: str) -> float:
        """Fraction of the country-side participants on the Internet."""
        placed = self.placement.get((t, config, dc), 0.0)
        if placed <= 0:
            return 0.0
        split = self.internet_split.get((t, config, dc, country), 0.0)
        return min(1.0, split / placed)


class SplitRoutingLp:
    """Joint placement + per-country routing split (future-work LP)."""

    def __init__(
        self,
        scenario: Scenario,
        demand: Mapping[Tuple[int, CallConfig], float],
        options: Optional[SplitLpOptions] = None,
    ) -> None:
        self.scenario = scenario
        self.options = options if options is not None else SplitLpOptions()
        self.demand = {k: v for k, v in demand.items() if v > 0}
        if not self.demand:
            raise ValueError("empty demand")
        self.slots = sorted({t for t, _ in self.demand})

    def build(self) -> Tuple[LinearProgram, Dict, Dict]:
        scenario = self.scenario
        opts = self.options
        lp = LinearProgram("titan-next-split")

        x_vars: Dict[SplitKey, object] = {}
        z_vars: Dict[Tuple[int, CallConfig, str, str], object] = {}
        for (t, config), count in sorted(
            self.demand.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            for dc in scenario.dc_codes:
                x = lp.add_variable(f"x[{t}][{config}][{dc}]")
                x_vars[(t, config, dc)] = x
                for country, _ in config.participants:
                    if scenario.internet_cap_gbps(country, dc) <= 0:
                        continue
                    z = lp.add_variable(f"z[{t}][{config}][{dc}][{country}]")
                    z_vars[(t, config, dc, country)] = z
                    # Split bounded by placement: Z <= X.
                    expr = LinExpr()
                    expr.add_term(z).add_term(x, -1.0)
                    lp.add_constraint(expr <= 0, name=f"ZleX[{t}][{config}][{dc}][{country}]")

        y_vars = {idx: lp.add_variable(f"y[{idx}]") for idx in range(scenario.wan_link_count)}
        self._y_vars = y_vars

        # C1 — place every call.
        for (t, config), count in self.demand.items():
            expr = LinExpr()
            for dc in scenario.dc_codes:
                expr.add_term(x_vars[(t, config, dc)])
            lp.add_constraint(expr == count, name=f"C1[{t}][{config}]")

        # C2 — compute caps.
        for t in self.slots:
            for dc in scenario.dc_codes:
                expr = LinExpr()
                nonzero = False
                for (tt, config), _ in self.demand.items():
                    if tt != t:
                        continue
                    expr.add_term(x_vars[(t, config, dc)], config.compute_cores())
                    nonzero = True
                if nonzero:
                    lp.add_constraint(expr <= scenario.compute_caps[dc], name=f"C2[{t}][{dc}]")

        # C3 — Internet capacity per (country, DC, slot), over splits.
        for t in self.slots:
            for country in scenario.country_codes:
                for dc in scenario.dc_codes:
                    cap = scenario.internet_cap_gbps(country, dc)
                    expr = LinExpr()
                    nonzero = False
                    for (tt, config), _ in self.demand.items():
                        if tt != t:
                            continue
                        key = (t, config, dc, country)
                        if key in z_vars:
                            expr.add_term(z_vars[key], config.country_bandwidth_gbps(country))
                            nonzero = True
                    if nonzero:
                        lp.add_constraint(expr <= cap, name=f"C3[{t}][{country}][{dc}]")

        # C4' — average participant RTT bound (linear in X, Z).
        total_participants = sum(
            count * config.total_participants for (t, config), count in self.demand.items()
        )
        expr = LinExpr()
        for (t, config, dc), x in x_vars.items():
            wan_rtt = sum(
                2.0 * scenario.one_way_ms(country, dc, WAN) * n
                for country, n in config.participants
            )
            expr.add_term(x, wan_rtt)
        for (t, config, dc, country), z in z_vars.items():
            n = config.count_for(country)
            delta = 2.0 * n * (
                scenario.one_way_ms(country, dc, INTERNET) - scenario.one_way_ms(country, dc, WAN)
            )
            expr.add_term(z, delta)
        lp.add_constraint(
            expr <= self.options.avg_rtt_bound_ms * total_participants, name="C4-avg-rtt"
        )

        # C5 — link peaks over the WAN-routed remainder (X - Z).
        for t in self.slots:
            loads: Dict[int, LinExpr] = {}
            for (tt, config), _ in self.demand.items():
                if tt != t:
                    continue
                for dc in scenario.dc_codes:
                    x = x_vars[(t, config, dc)]
                    for country, _ in config.participants:
                        bw = config.country_bandwidth_gbps(country)
                        if bw <= 0:
                            continue
                        for link_idx in scenario.link_indices(country, dc):
                            load = loads.setdefault(link_idx, LinExpr())
                            load.add_term(x, bw)
                            key = (t, config, dc, country)
                            if key in z_vars:
                                load.add_term(z_vars[key], -bw)
            for link_idx, load in loads.items():
                load.add_term(y_vars[link_idx], -1.0)
                lp.add_constraint(load <= 0, name=f"C5[{t}][{link_idx}]")

        objective = LinExpr()
        for y in y_vars.values():
            objective.add_term(y)
        if opts.locality_epsilon > 0:
            for (t, config, dc), x in x_vars.items():
                objective.add_term(
                    x, opts.locality_epsilon * scenario.total_latency_ms(config, dc, WAN)
                )
        lp.set_objective(objective)
        return lp, x_vars, z_vars

    def solve(self, method: str = "highs") -> SplitLpResult:
        lp, x_vars, z_vars = self.build()
        solution = lp.solve(method=method)
        if not solution.is_optimal:
            return SplitLpResult(status=solution.status, objective=None)
        # Extract by integer handle — variable names stay debug-only.
        x = solution.x
        placement = {
            key: float(x[var.index])
            for key, var in x_vars.items()
            if x[var.index] > 1e-9
        }
        splits = {
            key: float(x[var.index])
            for key, var in z_vars.items()
            if x[var.index] > 1e-9
        }
        peaks = {
            idx: float(x[var.index])
            for idx, var in self._y_vars.items()
        }
        return SplitLpResult(
            status="optimal",
            objective=solution.objective,
            placement=placement,
            internet_split=splits,
            link_peaks=peaks,
        )
