"""Media types and their resource footprints.

Each call participant can send up to three streams — audio, video, and
screen-share (§2.1).  A call's *call config* is labelled with the most
resource-hungry media type present, with the paper's ordering
``audio < screen-share < video`` (§5, "Call config").  Media type
determines both per-participant network bandwidth (used by the LP's
``networkUsed``) and MP compute cost (``computeUsed``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

AUDIO = "audio"
SCREENSHARE = "screenshare"
VIDEO = "video"

#: Paper ordering: audio < screen-share < video (most resource-hungry).
MEDIA_TYPES: Tuple[str, ...] = (AUDIO, SCREENSHARE, VIDEO)

_MEDIA_RANK: Dict[str, int] = {m: i for i, m in enumerate(MEDIA_TYPES)}


@dataclass(frozen=True)
class MediaProfile:
    """Resource footprint of one participant of a given media type."""

    media: str
    #: Mean bidirectional bandwidth per participant, kbit/s.
    bandwidth_kbps: float
    #: MP compute per participant, cores.
    compute_cores: float


#: Default resource profiles (representative conferencing bitrates).
MEDIA_PROFILES: Dict[str, MediaProfile] = {
    AUDIO: MediaProfile(AUDIO, bandwidth_kbps=60.0, compute_cores=0.02),
    SCREENSHARE: MediaProfile(SCREENSHARE, bandwidth_kbps=900.0, compute_cores=0.06),
    VIDEO: MediaProfile(VIDEO, bandwidth_kbps=1600.0, compute_cores=0.10),
}


def media_rank(media: str) -> int:
    """Position in the resource-hunger ordering (audio lowest)."""
    try:
        return _MEDIA_RANK[media]
    except KeyError:
        raise ValueError(f"unknown media type: {media!r}") from None


def dominant_media(media_types) -> str:
    """The most resource-hungry media type present (labels the config)."""
    present = list(media_types)
    if not present:
        raise ValueError("at least one media type required")
    return max(present, key=media_rank)


def profile(media: str) -> MediaProfile:
    """Resource profile for a media type."""
    try:
        return MEDIA_PROFILES[media]
    except KeyError:
        raise ValueError(f"unknown media type: {media!r}") from None


def participant_bandwidth_gbps(media: str, participants: int) -> float:
    """Total bandwidth of ``participants`` streams, in Gbit/s."""
    if participants < 0:
        raise ValueError("participants must be non-negative")
    return profile(media).bandwidth_kbps * participants / 1e6


def participant_compute_cores(media: str, participants: int) -> float:
    """Total MP compute of ``participants`` streams, in cores."""
    if participants < 0:
        raise ValueError("participants must be non-negative")
    return profile(media).compute_cores * participants
