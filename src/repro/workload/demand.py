"""Synthetic call demand: per-config arrival rates with seasonality.

Titan-Next forecasts per-config call counts at 30-minute granularity
(§6.1(2)) from 4 weeks of history, so the synthetic demand must carry
realistic structure: a diurnal double hump (morning / afternoon business
hours), a strong weekday/weekend effect, per-config popularity that is
heavy-tailed (the paper's top 3,000 configs cover 90+% of calls), and
day-to-day noise so that forecasting is non-trivial.

Counts are Poisson-sampled deterministically per (seed, config, slot),
so any window of the demand process can be regenerated independently.
The sampler is counter-based: each config owns one Philox stream keyed
on ``(seed, stable_hash(config))``, slot ``s`` owns a fixed block of
that stream, and counts are drawn by inverting the Poisson CDF on the
slot's uniform — so a whole ``(configs, slots)`` window is one batched
array computation (:meth:`DemandModel.counts_matrix`) and the scalar
APIs are thin views of the same stream.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import special

from ..geo.world import Country, stable_hash
from .configs import CallConfig
from .media import AUDIO, SCREENSHARE, VIDEO

#: 30-minute slots, as in the paper's LP and forecasting pipeline.
SLOTS_PER_DAY = 48
SLOTS_PER_WEEK = 7 * SLOTS_PER_DAY

#: Fraction of calls per media type (most Teams calls carry video).
MEDIA_MIX: Dict[str, float] = {AUDIO: 0.45, VIDEO: 0.42, SCREENSHARE: 0.13}

#: Fraction of calls that are intra-country ("majority", §6.3).
INTRA_COUNTRY_FRACTION = 0.85

#: Distribution of participant counts for intra-country calls.
INTRA_SIZE_WEIGHTS: Dict[int, float] = {
    1: 0.10, 2: 0.38, 3: 0.22, 4: 0.14, 5: 0.09, 6: 0.04, 8: 0.02, 10: 0.01,
}

#: Distribution of (countries, per-country size) for international calls.
INTER_SIZE_WEIGHTS: Dict[Tuple[int, ...], float] = {
    (1, 1): 0.55,
    (2, 1): 0.20,
    (1, 1, 1): 0.10,
    (2, 2): 0.08,
    (3, 1): 0.05,
    (2, 1, 1): 0.02,
}


#: Philox advances its counter in blocks of four 64-bit words; reserving
#: one block per slot makes slot ``s`` of a config's stream addressable
#: as ``advance(s)`` regardless of which window is being generated.
_WORDS_PER_SLOT = 4

#: Rates at or below this invert the Poisson CDF by walking the pmf
#: recurrence (vectorized, ~lam iterations); larger rates — where
#: ``exp(-lam)`` heads toward underflow and the walk gets long — invert
#: via the regularized incomplete gamma (``scipy.special.pdtrik``).
_SMALL_LAMBDA = 128.0


def _poisson_from_uniform(u: np.ndarray, lam: np.ndarray) -> np.ndarray:
    """Poisson inverse-CDF sampling: smallest ``k`` with ``u < CDF(k)``.

    Inverse-transform sampling from pre-drawn uniforms makes each count
    a pure function of ``(u, lam)``, which is what lets any demand
    window be regenerated independently of how it is batched.
    """
    u = np.asarray(u, dtype=np.float64)
    lam = np.asarray(lam, dtype=np.float64)
    out = np.zeros(lam.shape, dtype=np.int64)
    small = lam <= _SMALL_LAMBDA
    if small.any():
        ls = lam[small]
        us = u[small]
        pmf = np.exp(-ls)
        cdf = pmf.copy()
        counts = np.zeros(ls.shape, dtype=np.int64)
        unresolved = us >= cdf
        # Past lam + 12*sqrt(lam) the residual tail mass is below the
        # resolution of a 53-bit uniform; the cap also guards against
        # the accumulated CDF rounding to just under a u close to 1.
        peak = float(ls.max())
        k_max = int(math.ceil(peak + 12.0 * math.sqrt(peak) + 20.0))
        k = 0
        while k < k_max and unresolved.any():
            k += 1
            counts += unresolved
            pmf *= ls / k
            cdf += pmf
            unresolved &= us >= cdf
        out[small] = counts
    large = ~small
    if large.any():
        ll = lam[large]
        ul = u[large]
        vals = np.ceil(special.pdtrik(ul, ll))
        vals1 = np.maximum(vals - 1.0, 0.0)
        out[large] = np.where(special.pdtr(vals1, ll) >= ul, vals1, vals).astype(np.int64)
    return out


def diurnal_factor(slot_of_day: int) -> float:
    """Business-hours double hump, normalized to mean ~1 over the day."""
    hour = slot_of_day / 2.0
    morning = math.exp(-((hour - 10.0) ** 2) / (2 * 2.2**2))
    afternoon = math.exp(-((hour - 15.0) ** 2) / (2 * 2.6**2))
    base = 0.08 + 1.9 * (morning + 0.9 * afternoon)
    return base


def weekday_factor(day_of_week: int) -> float:
    """Weekday/weekend demand factor; day 0 is Monday."""
    if day_of_week < 0:
        raise ValueError("day_of_week must be non-negative")
    return (1.0, 1.05, 1.06, 1.04, 0.95, 0.30, 0.25)[day_of_week % 7]


@dataclass(frozen=True)
class ConfigDemand:
    """One call config plus its popularity weight in the universe."""

    config: CallConfig
    weight: float


class ConfigUniverse:
    """The population of call configs for a scenario (e.g. intra-Europe).

    Builds intra-country configs for every (country, size, media) combo
    and international configs for the most popular country pairs, with
    Zipf-ish weights derived from country call volumes.  The result is a
    deterministic ranked list; the paper's pipeline forecasts the top
    3,000 configs, our scaled scenario defaults to the top few hundred.
    """

    def __init__(
        self,
        countries: Sequence[Country],
        max_international_pairs: int = 40,
        seed: int = 29,
    ) -> None:
        if not countries:
            raise ValueError("need at least one country")
        self.countries = list(countries)
        self.seed = seed
        self._demands = self._build(max_international_pairs)
        # Cumulative weights, cached once: coverage() is an O(1) lookup
        # instead of an O(n) rescan of the whole ranked list per call.
        self._cum_weights = np.cumsum([d.weight for d in self._demands])

    def _build(self, max_pairs: int) -> List[ConfigDemand]:
        demands: List[ConfigDemand] = []
        total_weight = sum(c.call_volume_weight for c in self.countries)
        # Intra-country configs.
        for country in self.countries:
            share = country.call_volume_weight / total_weight
            for size, size_w in INTRA_SIZE_WEIGHTS.items():
                for media, media_w in MEDIA_MIX.items():
                    config = CallConfig(((country.code, size),), media)
                    weight = INTRA_COUNTRY_FRACTION * share * size_w * media_w
                    demands.append(ConfigDemand(config, weight))
        # International configs between the heaviest country pairs.
        ranked = sorted(self.countries, key=lambda c: -c.call_volume_weight)
        pairs = list(itertools.combinations(ranked, 2))[:max_pairs]
        pair_total = sum(a.call_volume_weight * b.call_volume_weight for a, b in pairs)
        for a, b in pairs:
            pair_share = a.call_volume_weight * b.call_volume_weight / pair_total
            for sizes, size_w in INTER_SIZE_WEIGHTS.items():
                for media, media_w in MEDIA_MIX.items():
                    involved = [a, b]
                    if len(sizes) > len(involved):
                        third = next(
                            (c for c in ranked if c not in involved), None
                        )
                        if third is None:
                            continue
                        involved.append(third)
                    counts = {c.code: s for c, s in zip(involved, sizes)}
                    config = CallConfig.from_counts(counts, media)
                    weight = (1 - INTRA_COUNTRY_FRACTION) * pair_share * size_w * media_w
                    demands.append(ConfigDemand(config, weight))
        demands.sort(key=lambda d: (-d.weight, d.config))
        return demands

    @property
    def demands(self) -> List[ConfigDemand]:
        return list(self._demands)

    @property
    def configs(self) -> List[CallConfig]:
        return [d.config for d in self._demands]

    def top(self, n: int) -> List[ConfigDemand]:
        """The n most popular configs (the paper forecasts the top 3,000)."""
        return self._demands[:n]

    def coverage(self, n: int) -> float:
        """Fraction of total call weight covered by the top n configs."""
        if n <= 0:
            return 0.0
        n = min(n, len(self._demands))
        return float(self._cum_weights[n - 1] / self._cum_weights[-1])


class DemandModel:
    """Per-(config, slot) Poisson arrival process with seasonality.

    ``expected_count`` is the deterministic rate (what an ideal
    forecaster could learn); ``sample_count`` adds Poisson noise plus a
    per-day demand shock shared across configs (news days, holidays),
    which is what makes Holt-Winters' job realistic.

    The batch APIs (:meth:`expected_matrix`, :meth:`counts_matrix`)
    produce whole ``(n_configs, n_slots)`` windows as single array
    computations; the scalar APIs delegate to the same uniform stream
    and inverse-CDF, so every consumer sees one consistent sample
    stream no matter how it slices the process.
    """

    def __init__(
        self,
        universe: ConfigUniverse,
        daily_calls: float = 40_000.0,
        day_shock_sigma: float = 0.06,
        seed: int = 31,
    ) -> None:
        if daily_calls <= 0:
            raise ValueError("daily_calls must be positive")
        self.universe = universe
        self.daily_calls = daily_calls
        self.day_shock_sigma = day_shock_sigma
        self.seed = seed
        total = sum(d.weight for d in universe.demands)
        self._rates = {d.config: d.weight / total for d in universe.demands}
        #: Per-config rate array aligned with ``universe.demands`` order.
        self._rate_arr = np.asarray([d.weight for d in universe.demands]) / total
        self._diurnal = np.asarray([diurnal_factor(s) for s in range(SLOTS_PER_DAY)])
        self._weekday = np.asarray([weekday_factor(d) for d in range(7)])
        # Normalize diurnal shape so rates integrate to daily_calls.
        self._diurnal_norm = float(self._diurnal.sum())
        self._philox_keys: Dict[CallConfig, np.ndarray] = {}

    # -- the per-config counter-based uniform stream -----------------------

    def _philox_key(self, config: CallConfig) -> np.ndarray:
        key = self._philox_keys.get(config)
        if key is None:
            key = np.array(
                [np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF), np.uint64(stable_hash(str(config)))],
                dtype=np.uint64,
            )
            self._philox_keys[config] = key
        return key

    def _config_uniforms(self, config: CallConfig, start_slot: int, slots: int) -> np.ndarray:
        """Slot-addressed uniforms of one config's Philox stream."""
        bit_generator = np.random.Philox(key=self._philox_key(config))
        if start_slot:
            bit_generator.advance(start_slot)
        draws = np.random.Generator(bit_generator).random(_WORDS_PER_SLOT * slots)
        return draws[::_WORDS_PER_SLOT]

    def _slot_shape(self, start_slot: int, slots: int) -> np.ndarray:
        """Diurnal × weekday factor per slot in the window."""
        s = np.arange(start_slot, start_slot + slots)
        return (self._diurnal[s % SLOTS_PER_DAY] / self._diurnal_norm) * self._weekday[
            (s // SLOTS_PER_DAY) % 7
        ]

    def _top(self, top_n: Optional[int]) -> List[ConfigDemand]:
        return self.universe.top(top_n) if top_n is not None else self.universe.demands

    def day_shock(self, day: int) -> float:
        """Market-wide demand multiplier for a day (shared across configs)."""
        rng = np.random.default_rng((self.seed, 0xD45, day))
        return float(np.exp(rng.normal(0.0, self.day_shock_sigma)))

    def day_shocks(self, start_day: int, days: int) -> np.ndarray:
        """``day_shock`` for a run of days, as an array."""
        return np.asarray([self.day_shock(start_day + d) for d in range(days)])

    def _slot_shocks(self, start_slot: int, slots: int) -> np.ndarray:
        """Per-slot day shock for the window (shared across configs)."""
        days = np.arange(start_slot, start_slot + slots) // SLOTS_PER_DAY
        first = int(days[0]) if slots else 0
        per_day = self.day_shocks(first, int(days[-1]) - first + 1) if slots else np.zeros(0)
        return per_day[days - first]

    # -- expectations ------------------------------------------------------

    def expected_count(self, config: CallConfig, slot: int) -> float:
        """Deterministic expected calls for (config, slot)."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        rate = self._rates.get(config)
        if rate is None:
            return 0.0
        day = slot // SLOTS_PER_DAY
        shape = self._diurnal[slot % SLOTS_PER_DAY] / self._diurnal_norm
        return float((self.daily_calls * rate) * (shape * self._weekday[day % 7]))

    def expected_matrix(
        self,
        start_slot: int,
        slots: int,
        top_n: Optional[int] = None,
        multipliers: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Expected calls for a whole window: ``(n_configs, slots)``.

        Rows follow ``universe.top(top_n)`` order; entry ``[i, j]``
        equals ``expected_count(configs[i], start_slot + j)`` exactly.
        ``multipliers`` (broadcastable to ``(n_configs, slots)``) scales
        the expectation per (config, slot) — the stress-campaign hook
        for flash crowds, holiday shifts, and correlated demand shocks.
        """
        if start_slot < 0:
            raise ValueError("start_slot must be non-negative")
        if slots < 0:
            raise ValueError("slots must be non-negative")
        n = len(self._top(top_n))
        scaled = self.daily_calls * self._rate_arr[:n]
        expected = scaled[:, None] * self._slot_shape(start_slot, slots)[None, :]
        if multipliers is not None:
            expected = expected * np.asarray(multipliers, dtype=np.float64)
        return expected

    # -- sampling ----------------------------------------------------------

    def counts_matrix(
        self,
        start_slot: int,
        slots: int,
        top_n: Optional[int] = None,
        multipliers: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sampled counts for a whole window: int64 ``(n_configs, slots)``.

        Entry ``[i, j]`` equals ``sample_count(configs[i],
        start_slot + j)`` — the scalar APIs are views of this stream.
        ``multipliers`` scales the Poisson rate per (config, slot)
        *before* the inverse-CDF draw: the same slot-addressed uniforms
        feed a scaled λ, so a stressed window stays a pure function of
        ``(seed, config, slot, multiplier)`` and unstressed entries are
        bit-identical to the unstressed window.
        """
        expected = self.expected_matrix(start_slot, slots, top_n, multipliers=multipliers)
        lam = expected * self._slot_shocks(start_slot, slots)[None, :]
        demands = self._top(top_n)
        uniforms = np.empty((len(demands), slots))
        for i, demand in enumerate(demands):
            uniforms[i] = self._config_uniforms(demand.config, start_slot, slots)
        return _poisson_from_uniform(uniforms, lam)

    def sample_count(self, config: CallConfig, slot: int) -> int:
        """Poisson-sampled calls for (config, slot), deterministic."""
        lam = self.expected_count(config, slot) * self.day_shock(slot // SLOTS_PER_DAY)
        if lam <= 0:
            return 0
        u = self._config_uniforms(config, slot, 1)
        return int(_poisson_from_uniform(u, np.asarray([lam]))[0])

    def counts_for_slot(self, slot: int, top_n: Optional[int] = None) -> Dict[CallConfig, int]:
        """Sampled counts for every (top_n) config in one slot."""
        demands = self._top(top_n)
        counts = self.counts_matrix(slot, 1, top_n)[:, 0]
        return {
            demands[i].config: int(count) for i, count in enumerate(counts) if count > 0
        }

    def series(self, config: CallConfig, start_slot: int, slots: int) -> np.ndarray:
        """Sampled demand time series for one config."""
        if start_slot < 0:
            raise ValueError("start_slot must be non-negative")
        rate = self._rates.get(config)
        if rate is None:
            return np.zeros(slots, dtype=np.int64)
        lam = (
            (self.daily_calls * rate)
            * self._slot_shape(start_slot, slots)
            * self._slot_shocks(start_slot, slots)
        )
        u = self._config_uniforms(config, start_slot, slots)
        return _poisson_from_uniform(u, lam)
