"""Synthetic call demand: per-config arrival rates with seasonality.

Titan-Next forecasts per-config call counts at 30-minute granularity
(§6.1(2)) from 4 weeks of history, so the synthetic demand must carry
realistic structure: a diurnal double hump (morning / afternoon business
hours), a strong weekday/weekend effect, per-config popularity that is
heavy-tailed (the paper's top 3,000 configs cover 90+% of calls), and
day-to-day noise so that forecasting is non-trivial.

Counts are Poisson-sampled deterministically per (seed, config, slot),
so any window of the demand process can be regenerated independently.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..geo.world import Country, World, stable_hash
from .configs import CallConfig
from .media import AUDIO, MEDIA_TYPES, SCREENSHARE, VIDEO

#: 30-minute slots, as in the paper's LP and forecasting pipeline.
SLOTS_PER_DAY = 48
SLOTS_PER_WEEK = 7 * SLOTS_PER_DAY

#: Fraction of calls per media type (most Teams calls carry video).
MEDIA_MIX: Dict[str, float] = {AUDIO: 0.45, VIDEO: 0.42, SCREENSHARE: 0.13}

#: Fraction of calls that are intra-country ("majority", §6.3).
INTRA_COUNTRY_FRACTION = 0.85

#: Distribution of participant counts for intra-country calls.
INTRA_SIZE_WEIGHTS: Dict[int, float] = {1: 0.10, 2: 0.38, 3: 0.22, 4: 0.14, 5: 0.09, 6: 0.04, 8: 0.02, 10: 0.01}

#: Distribution of (countries, per-country size) for international calls.
INTER_SIZE_WEIGHTS: Dict[Tuple[int, ...], float] = {
    (1, 1): 0.55,
    (2, 1): 0.20,
    (1, 1, 1): 0.10,
    (2, 2): 0.08,
    (3, 1): 0.05,
    (2, 1, 1): 0.02,
}


def diurnal_factor(slot_of_day: int) -> float:
    """Business-hours double hump, normalized to mean ~1 over the day."""
    hour = slot_of_day / 2.0
    morning = math.exp(-((hour - 10.0) ** 2) / (2 * 2.2**2))
    afternoon = math.exp(-((hour - 15.0) ** 2) / (2 * 2.6**2))
    base = 0.08 + 1.9 * (morning + 0.9 * afternoon)
    return base


def weekday_factor(day_of_week: int) -> float:
    """Weekday/weekend demand factor; day 0 is Monday."""
    if day_of_week < 0:
        raise ValueError("day_of_week must be non-negative")
    return (1.0, 1.05, 1.06, 1.04, 0.95, 0.30, 0.25)[day_of_week % 7]


@dataclass(frozen=True)
class ConfigDemand:
    """One call config plus its popularity weight in the universe."""

    config: CallConfig
    weight: float


class ConfigUniverse:
    """The population of call configs for a scenario (e.g. intra-Europe).

    Builds intra-country configs for every (country, size, media) combo
    and international configs for the most popular country pairs, with
    Zipf-ish weights derived from country call volumes.  The result is a
    deterministic ranked list; the paper's pipeline forecasts the top
    3,000 configs, our scaled scenario defaults to the top few hundred.
    """

    def __init__(
        self,
        countries: Sequence[Country],
        max_international_pairs: int = 40,
        seed: int = 29,
    ) -> None:
        if not countries:
            raise ValueError("need at least one country")
        self.countries = list(countries)
        self.seed = seed
        self._demands = self._build(max_international_pairs)

    def _build(self, max_pairs: int) -> List[ConfigDemand]:
        demands: List[ConfigDemand] = []
        total_weight = sum(c.call_volume_weight for c in self.countries)
        # Intra-country configs.
        for country in self.countries:
            share = country.call_volume_weight / total_weight
            for size, size_w in INTRA_SIZE_WEIGHTS.items():
                for media, media_w in MEDIA_MIX.items():
                    config = CallConfig(((country.code, size),), media)
                    weight = INTRA_COUNTRY_FRACTION * share * size_w * media_w
                    demands.append(ConfigDemand(config, weight))
        # International configs between the heaviest country pairs.
        ranked = sorted(self.countries, key=lambda c: -c.call_volume_weight)
        pairs = list(itertools.combinations(ranked, 2))[:max_pairs]
        pair_total = sum(a.call_volume_weight * b.call_volume_weight for a, b in pairs)
        for a, b in pairs:
            pair_share = a.call_volume_weight * b.call_volume_weight / pair_total
            for sizes, size_w in INTER_SIZE_WEIGHTS.items():
                for media, media_w in MEDIA_MIX.items():
                    involved = [a, b]
                    if len(sizes) > len(involved):
                        third = next(
                            (c for c in ranked if c not in involved), None
                        )
                        if third is None:
                            continue
                        involved.append(third)
                    counts = {c.code: s for c, s in zip(involved, sizes)}
                    config = CallConfig.from_counts(counts, media)
                    weight = (1 - INTRA_COUNTRY_FRACTION) * pair_share * size_w * media_w
                    demands.append(ConfigDemand(config, weight))
        demands.sort(key=lambda d: (-d.weight, d.config))
        return demands

    @property
    def demands(self) -> List[ConfigDemand]:
        return list(self._demands)

    @property
    def configs(self) -> List[CallConfig]:
        return [d.config for d in self._demands]

    def top(self, n: int) -> List[ConfigDemand]:
        """The n most popular configs (the paper forecasts the top 3,000)."""
        return self._demands[:n]

    def coverage(self, n: int) -> float:
        """Fraction of total call weight covered by the top n configs."""
        total = sum(d.weight for d in self._demands)
        return sum(d.weight for d in self._demands[:n]) / total


class DemandModel:
    """Per-(config, slot) Poisson arrival process with seasonality.

    ``expected_count`` is the deterministic rate (what an ideal
    forecaster could learn); ``sample_count`` adds Poisson noise plus a
    per-day demand shock shared across configs (news days, holidays),
    which is what makes Holt-Winters' job realistic.
    """

    def __init__(
        self,
        universe: ConfigUniverse,
        daily_calls: float = 40_000.0,
        day_shock_sigma: float = 0.06,
        seed: int = 31,
    ) -> None:
        if daily_calls <= 0:
            raise ValueError("daily_calls must be positive")
        self.universe = universe
        self.daily_calls = daily_calls
        self.day_shock_sigma = day_shock_sigma
        self.seed = seed
        total = sum(d.weight for d in universe.demands)
        self._rates = {d.config: d.weight / total for d in universe.demands}
        # Normalize diurnal shape so rates integrate to daily_calls.
        self._diurnal_norm = sum(diurnal_factor(s) for s in range(SLOTS_PER_DAY))

    def _config_rng(self, config: CallConfig, *labels: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, stable_hash(str(config)), *labels))

    def day_shock(self, day: int) -> float:
        """Market-wide demand multiplier for a day (shared across configs)."""
        rng = np.random.default_rng((self.seed, 0xD45, day))
        return float(np.exp(rng.normal(0.0, self.day_shock_sigma)))

    def expected_count(self, config: CallConfig, slot: int) -> float:
        """Deterministic expected calls for (config, slot)."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        rate = self._rates.get(config)
        if rate is None:
            return 0.0
        day = slot // SLOTS_PER_DAY
        slot_of_day = slot % SLOTS_PER_DAY
        shape = diurnal_factor(slot_of_day) / self._diurnal_norm
        return self.daily_calls * rate * shape * weekday_factor(day % 7)

    def sample_count(self, config: CallConfig, slot: int) -> int:
        """Poisson-sampled calls for (config, slot), deterministic."""
        lam = self.expected_count(config, slot) * self.day_shock(slot // SLOTS_PER_DAY)
        if lam <= 0:
            return 0
        rng = self._config_rng(config, slot)
        return int(rng.poisson(lam))

    def counts_for_slot(self, slot: int, top_n: Optional[int] = None) -> Dict[CallConfig, int]:
        """Sampled counts for every (top_n) config in one slot."""
        demands = self.universe.top(top_n) if top_n else self.universe.demands
        counts = {}
        for demand in demands:
            n = self.sample_count(demand.config, slot)
            if n > 0:
                counts[demand.config] = n
        return counts

    def series(self, config: CallConfig, start_slot: int, slots: int) -> np.ndarray:
        """Sampled demand time series for one config."""
        return np.array([self.sample_count(config, s) for s in range(start_slot, start_slot + slots)])
