"""Individual call traces for the online-controller simulation.

The oracle evaluation (§7) only needs per-config counts, but the
practical evaluation (§8) simulates the *controller*: calls arrive one
participant at a time, the MP DC and routing option must be chosen when
the **first** participant joins, and the call may have to be migrated
once the true config becomes known ~5 minutes in (§6.4).  That requires
individual calls with a first-joiner country and a reveal of the final
config — which is what this module generates, consistently with the
aggregate :class:`repro.workload.demand.DemandModel`.

Two representations share one sample stream:

* :meth:`TraceGenerator.calls_for_slot` / ``calls_for_window`` — the
  scalar reference: one :class:`Call` object per call, drawn in a
  per-(config, slot) Python loop;
* :meth:`TraceGenerator.table_for_window` — the batch path: a
  :class:`CallTable` (structure-of-arrays over the same calls) built
  from one :meth:`~repro.workload.demand.DemandModel.counts_matrix`
  window with vectorized duration and first-joiner draws.

Per-call randomness is counter-based, mirroring the demand model's
scheme: each (config, slot) owns a Philox stream keyed on
``(seed, stable_hash(config))`` with the slot in the counter, and every
draw is a pure function of that stream's uniforms (inverse-CDF), so the
batched table reproduces the scalar calls bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.world import stable_hash
from .configs import CallConfig
from .demand import SLOTS_PER_DAY, DemandModel

#: Call-duration distribution: geometric(p) clipped to [1, max] slots —
#: median ~1 slot (30 min), tail capped at 3 hours.
DURATION_P = 0.6
MAX_DURATION_SLOTS = 6
_LOG_1MP = float(np.log1p(-DURATION_P))


def duration_from_uniform(u):
    """Clipped-geometric duration(s) from uniform(s), by inverse CDF.

    ``geometric(p)`` has CDF ``1 - (1-p)**k``, so the smallest ``k``
    with ``u < CDF(k)`` is ``ceil(log(1-u)/log(1-p))``; the result is
    clipped to ``[1, MAX_DURATION_SLOTS]``.  Works elementwise on
    arrays and on scalars, with identical float behaviour — which is
    what keeps the scalar and batched trace paths on one stream.
    """
    k = np.ceil(np.log1p(-u) / _LOG_1MP)
    return np.clip(k, 1, MAX_DURATION_SLOTS).astype(np.int64)


def first_joiner_from_uniform(cum_weights: np.ndarray, u):
    """Index of the first joiner's country drawn by inverse CDF.

    ``cum_weights`` is the config's cumulative per-country participant
    distribution (ends at ~1.0); accepts scalar or array uniforms.
    """
    idx = np.searchsorted(cum_weights, u, side="right")
    return np.minimum(idx, len(cum_weights) - 1)


@dataclass(frozen=True)
class Call:
    """One call drawn from the trace generator.

    ``first_joiner_country`` is the only information the controller has
    at assignment time; ``config`` is the true (final) call config that
    becomes observable ~5 minutes into the call.
    """

    call_id: int
    config: CallConfig
    start_slot: int
    duration_slots: int
    first_joiner_country: str

    def __post_init__(self) -> None:
        if self.duration_slots < 1:
            raise ValueError("calls last at least one slot")
        if self.first_joiner_country not in self.config.countries:
            raise ValueError("first joiner must belong to the call config")

    @property
    def end_slot(self) -> int:
        return self.start_slot + self.duration_slots

    def active_in(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot


class CallTable:
    """A window of calls as parallel arrays (structure-of-arrays).

    The canonical trace representation for batch consumers: call ``i``
    is ``(configs[config_idx[i]], start_slot[i], duration_slots[i],
    first joiner = config.countries[first_joiner_idx[i]])`` with call id
    ``id_offset + i``.  ``configs`` is the interned config universe the
    index column points into (rows of the generating
    ``counts_matrix``); :class:`Call` objects are lazy views
    (:meth:`call`, iteration) so scalar consumers keep working.
    """

    __slots__ = (
        "configs",
        "config_idx",
        "start_slot",
        "duration_slots",
        "first_joiner_idx",
        "id_offset",
    )

    def __init__(
        self,
        configs: Sequence[CallConfig],
        config_idx: np.ndarray,
        start_slot: np.ndarray,
        duration_slots: np.ndarray,
        first_joiner_idx: np.ndarray,
        id_offset: int = 0,
    ) -> None:
        self.configs: Tuple[CallConfig, ...] = tuple(configs)
        self.config_idx = np.asarray(config_idx, dtype=np.int64)
        self.start_slot = np.asarray(start_slot, dtype=np.int64)
        self.duration_slots = np.asarray(duration_slots, dtype=np.int64)
        self.first_joiner_idx = np.asarray(first_joiner_idx, dtype=np.int64)
        self.id_offset = int(id_offset)
        n = len(self.config_idx)
        for name in ("start_slot", "duration_slots", "first_joiner_idx"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have one entry per call")
        if n and (self.duration_slots < 1).any():
            raise ValueError("calls last at least one slot")

    def __len__(self) -> int:
        return len(self.config_idx)

    @property
    def call_ids(self) -> np.ndarray:
        return np.arange(len(self), dtype=np.int64) + self.id_offset

    @property
    def end_slot(self) -> np.ndarray:
        return self.start_slot + self.duration_slots

    def config(self, i: int) -> CallConfig:
        return self.configs[self.config_idx[i]]

    def first_joiner_country(self, i: int) -> str:
        config = self.configs[self.config_idx[i]]
        return config.countries[self.first_joiner_idx[i]]

    def call(self, i: int) -> Call:
        """Lazy :class:`Call` view of row ``i``."""
        if i < 0:
            i += len(self)
        return Call(
            self.id_offset + i,
            self.config(i),
            int(self.start_slot[i]),
            int(self.duration_slots[i]),
            self.first_joiner_country(i),
        )

    def __iter__(self) -> Iterator[Call]:
        for i in range(len(self)):
            yield self.call(i)

    def to_calls(self) -> List[Call]:
        """Materialize every row as a :class:`Call` (the scalar view)."""
        return [self.call(i) for i in range(len(self))]

    def demand_table(
        self, reduced: bool = True, slots_per_day: Optional[int] = None
    ) -> Dict[Tuple[int, CallConfig], float]:
        """Aggregate the trace back into a per-(slot, config) table.

        With ``reduced=True`` counts are grouped by reduced call config
        (§6.2: ``N`` calls of a factor-``g`` config become ``N*g``
        reduced calls); ``slots_per_day`` folds absolute slots onto
        slot-of-day keys.  Built from the same counts the generator
        expanded, so a day table equals ``oracle_demand_for_day`` for
        the same demand model and ``top_n``.
        """
        if not len(self):
            return {}
        slots = self.start_slot % slots_per_day if slots_per_day else self.start_slot
        rows = np.stack([slots, self.config_idx], axis=1)
        uniq, counts = np.unique(rows, axis=0, return_counts=True)
        table: Dict[Tuple[int, CallConfig], float] = {}
        for (t, ci), n in zip(uniq, counts):
            config = self.configs[int(ci)]
            value = float(n)
            if reduced:
                value *= float(config.reduction_factor())
                config = config.reduced()
            key = (int(t), config)
            table[key] = table.get(key, 0.0) + value
        return table


@dataclass(frozen=True)
class _ConfigDraw:
    """Cached per-config sampling tables (countries + cumulative weights)."""

    countries: Tuple[str, ...]
    cum_weights: np.ndarray


class TraceGenerator:
    """Expands a :class:`DemandModel` into individual calls.

    For each (config, slot) the generator emits ``sample_count`` calls;
    each call picks its first joiner weighted by the config's per-country
    participant counts and draws a duration from a clipped geometric
    (median ~1 slot, tail up to 3 hours).

    ``calls_for_slot`` / ``calls_for_window`` are the pinned scalar
    reference; :meth:`table_for_window` produces the same calls as a
    :class:`CallTable` in one batched pass.
    """

    def __init__(
        self, demand: DemandModel, top_n_configs: Optional[int] = None, seed: int = 37
    ) -> None:
        self.demand = demand
        self.top_n_configs = top_n_configs
        self.seed = seed
        self._draws: Dict[CallConfig, _ConfigDraw] = {}
        self._philox_keys: Dict[CallConfig, np.ndarray] = {}
        self._universe: Optional[Tuple[CallConfig, ...]] = None
        self._str_order: Optional[List[int]] = None

    # -- the per-(config, slot) counter-based stream ----------------------

    def _philox_key(self, config: CallConfig) -> np.ndarray:
        key = self._philox_keys.get(config)
        if key is None:
            key = np.array(
                [np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF), np.uint64(stable_hash(str(config)))],
                dtype=np.uint64,
            )
            self._philox_keys[config] = key
        return key

    def _call_rng(self, config: CallConfig, slot: int) -> np.random.Generator:
        """Slot-addressed Philox stream for one config's calls.

        The key is ``(seed, stable_hash(config))`` and the slot sits in
        the counter's third word, so every (config, slot) owns an
        independent stream regardless of which window is generated —
        the same scheme :class:`DemandModel` uses for counts.
        """
        counter = np.array([0, 0, np.uint64(slot), 0], dtype=np.uint64)
        return np.random.Generator(np.random.Philox(key=self._philox_key(config), counter=counter))

    def _draw(self, config: CallConfig) -> _ConfigDraw:
        draw = self._draws.get(config)
        if draw is None:
            weights = np.array([n for _, n in config.participants], dtype=float)
            weights /= weights.sum()
            draw = _ConfigDraw(config.countries, np.cumsum(weights))
            self._draws[config] = draw
        return draw

    def _configs(self) -> Tuple[CallConfig, ...]:
        """The interned config universe (``counts_matrix`` row order)."""
        if self._universe is None:
            universe = self.demand.universe
            items = (
                universe.top(self.top_n_configs)
                if self.top_n_configs is not None
                else universe.demands
            )
            self._universe = tuple(item.config for item in items)
            self._str_order = sorted(
                range(len(self._universe)), key=lambda i: str(self._universe[i])
            )
        return self._universe

    # -- scalar reference --------------------------------------------------

    def calls_for_slot(self, slot: int, id_offset: int = 0) -> List[Call]:
        """All calls starting in one 30-minute slot (scalar reference)."""
        calls: List[Call] = []
        counts = self.demand.counts_for_slot(slot, top_n=self.top_n_configs)
        call_id = id_offset
        for config, count in sorted(counts.items(), key=lambda kv: str(kv[0])):
            rng = self._call_rng(config, slot)
            draw = self._draw(config)
            for _ in range(count):
                u_first = rng.random()
                u_duration = rng.random()
                first = draw.countries[int(first_joiner_from_uniform(draw.cum_weights, u_first))]
                duration = int(duration_from_uniform(u_duration))
                calls.append(Call(call_id, config, slot, duration, first))
                call_id += 1
        return calls

    def calls_for_window(self, start_slot: int, slots: int) -> List[Call]:
        """All calls starting within [start_slot, start_slot + slots)."""
        if slots < 0:
            raise ValueError("slots must be non-negative")
        calls: List[Call] = []
        for slot in range(start_slot, start_slot + slots):
            calls.extend(self.calls_for_slot(slot, id_offset=len(calls)))
        return calls

    def calls_for_day(self, day: int) -> List[Call]:
        """All calls starting on one day (day 0 = Monday)."""
        return self.calls_for_window(day * SLOTS_PER_DAY, SLOTS_PER_DAY)

    # -- batch path --------------------------------------------------------

    def table_for_window(
        self,
        start_slot: int,
        slots: int,
        id_offset: int = 0,
        multipliers: Optional[np.ndarray] = None,
    ) -> CallTable:
        """One window of calls as a :class:`CallTable`, in one pass.

        Row-for-row identical to :meth:`calls_for_window` (same counts,
        same per-(config, slot) uniforms, same inverse-CDF draws), but
        the counts come from one ``counts_matrix`` window and the
        duration / first-joiner transforms run vectorized over all
        calls at once.  ``multipliers`` (broadcastable to
        ``(n_configs, slots)``) scales the Poisson rates — the stress
        campaigns' flash-crowd / holiday / shock hook; per-call draws
        stay on the same slot-addressed streams.
        """
        if slots < 0:
            raise ValueError("slots must be non-negative")
        configs = self._configs()
        counts = self.demand.counts_matrix(
            start_slot, slots, top_n=self.top_n_configs, multipliers=multipliers
        )
        order = self._str_order
        assert order is not None

        # One uniform block per active (config, slot), drawn config-major
        # so each config's Philox is constructed once and re-pointed at
        # successive slots by counter mutation (streams are independent,
        # so draw order does not matter); parts are then reassembled in
        # the scalar emission order: slot-major, configs by str within a
        # slot.  Each block holds the same doubles the scalar path draws
        # call by call — evens pick the first joiner, odds the duration.
        parts: List[Tuple[int, int, int, int, np.ndarray]] = []
        for position, i in enumerate(order):
            row = counts[i]
            active = np.nonzero(row > 0)[0]
            if not len(active):
                continue
            bit_generator = np.random.Philox(key=self._philox_key(configs[i]))
            state = bit_generator.state
            counter = state["state"]["counter"]
            generator = np.random.Generator(bit_generator)
            for j in active:
                count = int(row[j])
                counter[:] = 0
                counter[2] = np.uint64(start_slot + int(j))
                state["buffer_pos"] = 4
                bit_generator.state = state
                parts.append((int(j), position, i, count, generator.random(2 * count)))
        parts.sort(key=lambda part: (part[0], part[1]))

        if not parts:
            empty = np.zeros(0, dtype=np.int64)
            return CallTable(configs, empty, empty, empty, empty, id_offset)

        part_counts = np.asarray([part[3] for part in parts], dtype=np.int64)
        config_idx = np.repeat(np.asarray([part[2] for part in parts], dtype=np.int64), part_counts)
        start_slots = np.repeat(
            start_slot + np.asarray([part[0] for part in parts], dtype=np.int64), part_counts
        )
        uniforms = np.concatenate([part[4] for part in parts])
        u_first = uniforms[0::2]
        durations = duration_from_uniform(uniforms[1::2])
        first_idx = np.zeros(len(config_idx), dtype=np.int64)
        for i in np.unique(config_idx):
            mask = config_idx == i
            draw = self._draw(configs[i])
            first_idx[mask] = first_joiner_from_uniform(draw.cum_weights, u_first[mask])
        return CallTable(configs, config_idx, start_slots, durations, first_idx, id_offset)

    def table_for_day(self, day: int, multipliers: Optional[np.ndarray] = None) -> CallTable:
        """One day of calls as a :class:`CallTable` (day 0 = Monday)."""
        return self.table_for_window(
            day * SLOTS_PER_DAY, SLOTS_PER_DAY, multipliers=multipliers
        )
