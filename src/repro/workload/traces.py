"""Individual call traces for the online-controller simulation.

The oracle evaluation (§7) only needs per-config counts, but the
practical evaluation (§8) simulates the *controller*: calls arrive one
participant at a time, the MP DC and routing option must be chosen when
the **first** participant joins, and the call may have to be migrated
once the true config becomes known ~5 minutes in (§6.4).  That requires
individual calls with a first-joiner country and a reveal of the final
config — which is what this module generates, consistently with the
aggregate :class:`repro.workload.demand.DemandModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.world import stable_hash
from .configs import CallConfig
from .demand import SLOTS_PER_DAY, DemandModel


@dataclass(frozen=True)
class Call:
    """One call drawn from the trace generator.

    ``first_joiner_country`` is the only information the controller has
    at assignment time; ``config`` is the true (final) call config that
    becomes observable ~5 minutes into the call.
    """

    call_id: int
    config: CallConfig
    start_slot: int
    duration_slots: int
    first_joiner_country: str

    def __post_init__(self) -> None:
        if self.duration_slots < 1:
            raise ValueError("calls last at least one slot")
        if self.first_joiner_country not in self.config.countries:
            raise ValueError("first joiner must belong to the call config")

    @property
    def end_slot(self) -> int:
        return self.start_slot + self.duration_slots

    def active_in(self, slot: int) -> bool:
        return self.start_slot <= slot < self.end_slot


class TraceGenerator:
    """Expands a :class:`DemandModel` into individual calls.

    For each (config, slot) the generator emits ``sample_count`` calls;
    each call picks its first joiner weighted by the config's per-country
    participant counts and draws a duration from a clipped geometric
    (median ~1 slot, tail up to a few hours).
    """

    def __init__(self, demand: DemandModel, top_n_configs: Optional[int] = None, seed: int = 37) -> None:
        self.demand = demand
        self.top_n_configs = top_n_configs
        self.seed = seed

    def _call_rng(self, config: CallConfig, slot: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, stable_hash(str(config)), slot))

    def calls_for_slot(self, slot: int, id_offset: int = 0) -> List[Call]:
        """All calls starting in one 30-minute slot."""
        calls: List[Call] = []
        counts = self.demand.counts_for_slot(slot, top_n=self.top_n_configs)
        call_id = id_offset
        for config, count in sorted(counts.items(), key=lambda kv: str(kv[0])):
            rng = self._call_rng(config, slot)
            countries = [c for c, _ in config.participants]
            weights = np.array([n for _, n in config.participants], dtype=float)
            weights /= weights.sum()
            for _ in range(count):
                first = str(rng.choice(countries, p=weights))
                duration = 1 + int(rng.geometric(0.6))
                duration = min(duration, 6)
                calls.append(Call(call_id, config, slot, duration, first))
                call_id += 1
        return calls

    def calls_for_window(self, start_slot: int, slots: int) -> List[Call]:
        """All calls starting within [start_slot, start_slot + slots)."""
        if slots < 0:
            raise ValueError("slots must be non-negative")
        calls: List[Call] = []
        for slot in range(start_slot, start_slot + slots):
            calls.extend(self.calls_for_slot(slot, id_offset=len(calls)))
        return calls

    def calls_for_day(self, day: int) -> List[Call]:
        """All calls starting on one day (day 0 = Monday)."""
        return self.calls_for_window(day * SLOTS_PER_DAY, SLOTS_PER_DAY)
