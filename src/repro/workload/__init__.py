"""Call-workload substrate: media, configs, demand, and traces."""

from .configs import CallConfig, group_by_reduced
from .demand import (
    INTRA_COUNTRY_FRACTION,
    MEDIA_MIX,
    SLOTS_PER_DAY,
    SLOTS_PER_WEEK,
    ConfigDemand,
    ConfigUniverse,
    DemandModel,
    diurnal_factor,
    weekday_factor,
)
from .media import (
    AUDIO,
    MEDIA_PROFILES,
    MEDIA_TYPES,
    SCREENSHARE,
    VIDEO,
    MediaProfile,
    dominant_media,
    media_rank,
    participant_bandwidth_gbps,
    participant_compute_cores,
    profile,
)
from .traces import Call, CallTable, TraceGenerator

__all__ = [
    "CallConfig",
    "group_by_reduced",
    "INTRA_COUNTRY_FRACTION",
    "MEDIA_MIX",
    "SLOTS_PER_DAY",
    "SLOTS_PER_WEEK",
    "ConfigDemand",
    "ConfigUniverse",
    "DemandModel",
    "diurnal_factor",
    "weekday_factor",
    "AUDIO",
    "MEDIA_PROFILES",
    "MEDIA_TYPES",
    "SCREENSHARE",
    "VIDEO",
    "MediaProfile",
    "dominant_media",
    "media_rank",
    "participant_bandwidth_gbps",
    "participant_compute_cores",
    "profile",
    "Call",
    "CallTable",
    "TraceGenerator",
]
