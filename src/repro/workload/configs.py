"""Call configurations and reduced call configurations (§5, §6.2).

A *call config* captures the resource requirements of a call: the
countries of its participants, the participant count per country, and
the dominant media type.  All calls with the same config are fungible.

A *reduced call config* factors scale out of distribution: participant
counts are divided by their GCD so that, e.g., ``(DE-2, audio)`` and
``(DE-3, audio)`` both reduce to ``(DE-1, audio)`` and are planned as a
single group by the LP — the mechanism Titan-Next uses to cut call
migrations by 38–66% (Table 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Dict, Iterable, Mapping, Tuple

from .media import dominant_media, media_rank, participant_bandwidth_gbps, participant_compute_cores


@dataclass(frozen=True, order=True)
class CallConfig:
    """An immutable call configuration.

    ``participants`` is a tuple of ``(country_code, count)`` pairs sorted
    by country code — e.g. ``(("FR", 2), ("GB", 1))`` — and ``media`` is
    the dominant media type of the call.
    """

    participants: Tuple[Tuple[str, int], ...]
    media: str

    def __post_init__(self) -> None:
        if not self.participants:
            raise ValueError("call config needs at least one country")
        if list(self.participants) != sorted(self.participants):
            raise ValueError("participants must be sorted by country code")
        seen = set()
        for country, count in self.participants:
            if count < 1:
                raise ValueError(f"participant count must be >= 1, got {count}")
            if country in seen:
                raise ValueError(f"duplicate country in config: {country}")
            seen.add(country)
        media_rank(self.media)  # validates

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_counts(cls, counts: Mapping[str, int], media: str) -> "CallConfig":
        """Build a config from a ``{country: count}`` mapping."""
        participants = tuple(sorted((c, n) for c, n in counts.items()))
        return cls(participants, media)

    @classmethod
    def from_participants(
        cls, countries: Iterable[str], media_types: Iterable[str]
    ) -> "CallConfig":
        """Build a config from raw participant data.

        ``countries`` lists one entry per participant; the config's media
        label is the dominant type across ``media_types``.
        """
        counts: Dict[str, int] = {}
        for country in countries:
            counts[country] = counts.get(country, 0) + 1
        if not counts:
            raise ValueError("at least one participant required")
        return cls.from_counts(counts, dominant_media(media_types))

    # -- properties -------------------------------------------------------

    @property
    def countries(self) -> Tuple[str, ...]:
        return tuple(country for country, _ in self.participants)

    @property
    def total_participants(self) -> int:
        return sum(count for _, count in self.participants)

    @property
    def is_intra_country(self) -> bool:
        return len(self.participants) == 1

    def count_for(self, country_code: str) -> int:
        for country, count in self.participants:
            if country == country_code:
                return count
        return 0

    # -- resource accounting ----------------------------------------------

    def compute_cores(self) -> float:
        """MP compute needed by one call of this config (LP computeUsed)."""
        return participant_compute_cores(self.media, self.total_participants)

    def bandwidth_gbps(self) -> float:
        """Total participant bandwidth of one call (LP networkUsed)."""
        return participant_bandwidth_gbps(self.media, self.total_participants)

    def country_bandwidth_gbps(self, country_code: str) -> float:
        """Bandwidth contributed by this config's participants in one country."""
        return participant_bandwidth_gbps(self.media, self.count_for(country_code))

    # -- reduction (§6.2) --------------------------------------------------

    def reduction_factor(self) -> int:
        """GCD of the per-country counts (1 for already-reduced configs)."""
        return reduce(math.gcd, (count for _, count in self.participants))

    def reduced(self) -> "CallConfig":
        """The reduced call config: counts divided by their GCD.

        For intra-country calls this always yields a single participant
        (``(DE-2, audio)`` → ``(DE-1, audio)``), which is what groups
        differently-sized domestic calls together.
        """
        gcd = self.reduction_factor()
        participants = tuple((country, count // gcd) for country, count in self.participants)
        return CallConfig(participants, self.media)

    def __str__(self) -> str:
        inner = ", ".join(f"{country}-{count}" for country, count in self.participants)
        return f"(({inner}), {self.media})"


def group_by_reduced(
    counts: Mapping[CallConfig, float],
) -> Dict[CallConfig, float]:
    """Group call-config counts by reduced config (§6.2).

    ``N`` calls of a config with reduction factor ``g`` become ``N * g``
    reduced calls (the paper's example: 100 × (DE-2, audio) → 200 ×
    (DE-1, audio)), keeping total resource requirements identical.
    Configs with different media types are never merged.
    """
    grouped: Dict[CallConfig, float] = {}
    for config, count in counts.items():
        if count < 0:
            raise ValueError("negative call count")
        reduced = config.reduced()
        grouped[reduced] = grouped.get(reduced, 0.0) + count * config.reduction_factor()
    return grouped
