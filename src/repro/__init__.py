"""repro — reproduction of "Saving Private WAN" (CoNEXT 2024).

The package implements, from scratch:

* the WAN-vs-Internet measurement substrate of §3 (:mod:`repro.geo`,
  :mod:`repro.net`, :mod:`repro.measurement`);
* **Titan** (§4): the quality-gated production offload controller
  (:mod:`repro.core.titan` and friends);
* **Titan-Next** (§5–§8): joint MP-DC + routing assignment via demand
  forecasting and an LP over reduced call configs
  (:mod:`repro.core`);
* the synthetic substrates that stand in for production data:
  call workloads (:mod:`repro.workload`), telemetry
  (:mod:`repro.telemetry`), and an LP solver (:mod:`repro.solver`);
* the evaluation harnesses regenerating every table and figure
  (:mod:`repro.experiments`, driven from ``benchmarks/``).

Quickstart::

    from repro.core import build_europe_setup, run_oracle_day
    from repro.analysis import evaluate_assignment

    setup = build_europe_setup(daily_calls=20_000)
    results = run_oracle_day(setup, day=2)
    for name, result in results.items():
        print(name, result.sum_of_peaks_gbps)
"""

from . import analysis, core, geo, measurement, net, solver, telemetry, workload

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "geo",
    "measurement",
    "net",
    "solver",
    "telemetry",
    "workload",
    "__version__",
]
