"""Fig 19 — the F heatmap six months earlier (stability)."""

from conftest import emit

from repro.experiments.measurement_exps import run_fig19


def test_fig19_stability(benchmark):
    result = benchmark.pedantic(run_fig19, kwargs={"hours": 96}, rounds=1)
    emit(result)
    # The broad trends hold six months apart: modest average drift
    # against the published Dec'23 heatmap.
    assert result.measured["cells"] == 132
    assert result.measured["mean_abs_error_vs_paper"] < 0.20
