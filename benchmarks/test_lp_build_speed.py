"""LP assembly speed — array-first build vs the scalar reference.

The ISSUE-1 tentpole: on the default 150-config intra-Europe scenario
(48 slots x 150 reduced configs x 5 DCs x 2 routing options) the
array-first ``JointAssignmentLp.build`` + sparse HiGHS assembly must be
at least 3x faster than the original per-term scalar path, while
producing the same LP (same shape, same optimal objective to 1e-6).
"""

import time

import pytest

from repro.core.lp import JointAssignmentLp
from repro.core.titan_next import build_europe_setup, oracle_demand_for_day
from repro.solver.scipy_backend import PreparedHighs

pytestmark = pytest.mark.slow

REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def default_day():
    """Default Europe scenario (§7.3 scale: 150 reduced configs)."""
    setup = build_europe_setup()
    return setup, oracle_demand_for_day(setup, day=2)


def _best_of(fn, rounds=3):
    """Minimum wall-clock over a few rounds (damps scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_array_first_build_is_3x_faster_with_identical_objective(default_day):
    setup, demand = default_day
    builder = JointAssignmentLp(setup.scenario, demand)

    t_ref, (ref_lp, ref_prep) = _best_of(
        lambda: (lambda lp: (lp, PreparedHighs(lp)))(builder.build_reference()[0])
    )
    t_new, (new_lp, new_prep) = _best_of(
        lambda: (lambda lp: (lp, PreparedHighs(lp)))(builder.build()[0])
    )

    assert new_lp.num_variables == ref_lp.num_variables
    assert new_lp.num_constraints == ref_lp.num_constraints

    speedup = t_ref / t_new
    print(
        f"\nLP build+assemble: reference {t_ref * 1e3:.1f} ms, "
        f"array-first {t_new * 1e3:.1f} ms -> {speedup:.1f}x "
        f"({new_lp.num_variables} vars, {new_lp.num_constraints} constraints)"
    )
    assert speedup >= REQUIRED_SPEEDUP

    ref_solution = ref_prep.solve()
    new_solution = new_prep.solve()
    assert ref_solution.status == new_solution.status == "optimal"
    assert new_solution.objective == pytest.approx(ref_solution.objective, rel=1e-6, abs=1e-6)


def test_plan_cache_resolve_beats_fresh_build(default_day):
    """Re-solving the cached structure must beat build-from-scratch."""
    from repro.core.titan_next import plan_cache_for_days

    setup, demand = default_day
    cache, demands = plan_cache_for_days(setup, [2, 3])

    t_fresh, fresh = _best_of(
        lambda: JointAssignmentLp(setup.scenario, demands[3]).solve(), rounds=2
    )
    t_cached, cached = _best_of(lambda: cache.solve_day(demands[3]), rounds=2)

    print(
        f"\nday solve: fresh build+solve {t_fresh * 1e3:.1f} ms, "
        f"cached RHS-refresh+solve {t_cached * 1e3:.1f} ms"
    )
    assert cached.is_optimal and fresh.is_optimal
    assert cached.objective == pytest.approx(fresh.objective, rel=1e-6, abs=1e-6)
    # The cache removes the whole build+assembly phase; the remaining
    # HiGHS solve dominates both paths (and the cached model covers the
    # union structure), so allow scheduler noise around parity — the
    # re-solve must never cost meaningfully more than build-from-scratch.
    assert t_cached < t_fresh * 1.25
