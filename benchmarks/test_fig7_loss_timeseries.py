"""Fig 7 — loss time series, France clients to the Netherlands DC."""

from conftest import emit

from repro.experiments.quality_exps import run_fig7


def test_fig7_loss_spikes(benchmark):
    result = benchmark.pedantic(run_fig7, kwargs={"days": 7}, rounds=1)
    emit(result)
    measured = result.measured
    # Internet spikes are taller and more frequent than the WAN's.
    assert measured["peak_ratio_internet_over_wan"] > 3.0
    assert measured["internet_spike_hours"] > measured["wan_spike_hours"]
    assert measured["wan_peak_loss_pct"] < 0.2
