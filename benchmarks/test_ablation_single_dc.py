"""§6.3 'what did not work' — one DC per config kills the savings."""

from conftest import emit

from repro.experiments.eval_exps import run_ablation_single_dc


def test_ablation_single_dc(benchmark, eval_setup):
    result = benchmark.pedantic(run_ablation_single_dc, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    # Pinning each config to one DC gives up peak-shaving flexibility.
    assert result.measured["savings_lost_by_pinning"] > 0.0
