"""Table 4 — call migrations with vs without reduced call configs."""

import pytest
from conftest import emit

from repro.experiments.eval_exps import run_tab4

pytestmark = pytest.mark.slow


def test_tab4_migration_reduction(benchmark, eval_setup):
    result = benchmark.pedantic(run_tab4, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    measured = result.measured
    # Reduced call configs cut migrations (the Table 4 claim).
    assert measured["migration_rate_with_reduced"] <= measured["migration_rate_with_raw"]
    assert measured["migration_rate_with_raw"] > 0
