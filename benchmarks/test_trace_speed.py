"""Trace-synthesis and controller-day speed — batch vs scalar paths.

The ISSUE-3 tentpole: on the default 150-config intra-Europe scenario
(~40k calls/day), ``TraceGenerator.table_for_day`` must synthesize one
day's calls at least 5x faster than the scalar per-call reference, and
a full Titan-Next controller day through ``process_table`` must run at
least 3x faster than the scalar per-call loop — while reproducing the
scalar calls, placements, and :class:`ControllerStats` exactly.
"""

import time

import pytest

from repro.core.controller import TitanNextController
from repro.core.lp import JointAssignmentLp, JointLpOptions
from repro.core.plan import OfflinePlan
from repro.core.titan_next import build_europe_setup, predicted_demand_for_day
from repro.workload.traces import TraceGenerator

pytestmark = pytest.mark.slow

REQUIRED_TRACE_SPEEDUP = 5.0
REQUIRED_CONTROLLER_SPEEDUP = 3.0
DAY = 30


@pytest.fixture(scope="module")
def default_setup():
    """Default Europe scenario (§7.3 scale: 150 configs, 40k calls)."""
    return build_europe_setup()


def _best_of(fn, rounds=2):
    """Minimum wall-clock over a few rounds (damps scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_table_synthesis_is_5x_faster_with_identical_calls(default_setup):
    setup = default_setup
    reference = TraceGenerator(setup.demand, top_n_configs=setup.top_n_configs, seed=71)
    batched = TraceGenerator(setup.demand, top_n_configs=setup.top_n_configs, seed=71)
    t_ref, calls = _best_of(lambda: reference.calls_for_day(DAY))
    t_new, table = _best_of(lambda: batched.table_for_day(DAY))

    assert len(table) == len(calls)
    assert table.to_calls() == calls

    speedup = t_ref / t_new
    print(
        f"\ntrace synthesis: scalar {t_ref * 1e3:.0f} ms, "
        f"batched {t_new * 1e3:.0f} ms -> {speedup:.1f}x ({len(calls)} calls)"
    )
    assert speedup >= REQUIRED_TRACE_SPEEDUP


def test_controller_day_is_3x_faster_with_identical_stats(default_setup):
    setup = default_setup
    options = JointLpOptions(e2e_bound_ms=75.0)
    predicted = predicted_demand_for_day(setup, DAY)
    solved = JointAssignmentLp(setup.scenario, predicted, options).solve()
    assert solved.is_optimal

    table = TraceGenerator(
        setup.demand, top_n_configs=setup.top_n_configs, seed=71
    ).table_for_day(DAY)
    calls = table.to_calls()

    def scalar_day():
        controller = TitanNextController(
            setup.scenario, OfflinePlan.from_assignment(solved.assignment), seed=72
        )
        return [controller.process(call) for call in calls], controller.stats

    def batched_day():
        controller = TitanNextController(
            setup.scenario, OfflinePlan.from_assignment(solved.assignment), seed=72
        )
        return controller.process_table(table), controller.stats

    t_ref, (ref_assignments, ref_stats) = _best_of(scalar_day)
    t_new, (batch, batch_stats) = _best_of(batched_day)

    assert batch_stats == ref_stats
    assert [
        (a.call.call_id, a.initial_dc, a.initial_option, a.final_dc, a.final_option)
        for a in batch
    ] == [
        (a.call.call_id, a.initial_dc, a.initial_option, a.final_dc, a.final_option)
        for a in ref_assignments
    ]

    speedup = t_ref / t_new
    print(
        f"\ncontroller day: scalar {t_ref:.2f} s, batched {t_new:.2f} s "
        f"-> {speedup:.1f}x ({ref_stats.calls} calls, "
        f"{ref_stats.dc_migration_rate:.1%} DC migrations)"
    )
    assert speedup >= REQUIRED_CONTROLLER_SPEEDUP
