"""Fig 4 — fraction F heatmap (22 countries x 6 DCs)."""

from conftest import emit

from repro.experiments.measurement_exps import run_fig4


def test_fig4_heatmap(benchmark):
    result = benchmark.pedantic(run_fig4, kwargs={"hours": 120}, rounds=1)
    emit(result)
    assert result.measured["cells"] == 132
    # Calibrated against the published heatmap: small average error.
    assert result.measured["mean_abs_error_vs_paper"] < 0.10
