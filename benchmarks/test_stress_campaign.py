"""Stress & failure campaign family: event days with intraday replanning.

Pins the operational claims the stress layer reproduces: a mid-day
fiber cut is replanned onto the WAN, a DC outage drains to the rest of
the fleet, a 12× flash crowd degrades gracefully through the §6.4
surge path instead of failing, and the quieter holiday/shock days stay
feasible.  Campaign metrics (overflow/surge rates, replan rounds, WAN
peaks) land in ``BENCH_stress_campaign.json`` for nightly tracking.
"""

import pytest
from conftest import emit

from repro.core.stress import StressTimeline, campaign_scenarios, run_campaign_day
from repro.experiments.stress_exps import (
    run_stress_dc_outage,
    run_stress_fiber_cut,
    run_stress_flash_crowd,
)

DAY = 2

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def baseline_day(eval_setup):
    return run_campaign_day(eval_setup, StressTimeline(()), day=DAY)


@pytest.fixture(scope="module")
def scenarios(eval_setup):
    return campaign_scenarios(eval_setup)


def test_stress_fiber_cut_campaign(eval_setup, record_bench):
    result = emit(run_stress_fiber_cut(setup=eval_setup, day=DAY))
    measured = result.measured
    # Withdrawing the corridor's Internet fallback pushes load to the WAN.
    assert measured["sum_of_peaks_gbps"] > measured["baseline_sum_of_peaks_gbps"]
    assert measured["internet_share"] < measured["baseline_internet_share"]
    # The cut changes capacity, not demand, and stays feasible.
    assert measured["calls"] == measured["baseline_calls"]
    assert measured["infeasible_rounds"] == 0
    record_bench(
        sum_of_peaks_gbps=measured["sum_of_peaks_gbps"],
        baseline_sum_of_peaks_gbps=measured["baseline_sum_of_peaks_gbps"],
        internet_share=measured["internet_share"],
        replanned_rounds=measured["replanned_rounds"],
    )


def test_stress_dc_outage_campaign(eval_setup, record_bench):
    result = emit(run_stress_dc_outage(setup=eval_setup, day=DAY))
    measured = result.measured
    # Losing the smallest-share DC must be replannable onto the rest.
    assert measured["infeasible_rounds"] == 0
    assert measured["replanned_rounds"] > 0
    assert measured["surge_rate"] < 0.05
    record_bench(
        sum_of_peaks_gbps=measured["sum_of_peaks_gbps"],
        overflow_rate=measured["overflow_rate"],
        replanned_rounds=measured["replanned_rounds"],
    )


def test_stress_flash_crowd_surge_degrades_gracefully(eval_setup, record_bench):
    """The acceptance scenario: the 12× surge goes infeasible mid-day,
    the stale plan is kept, the overflow is accounted, scoring completes."""
    result = emit(run_stress_flash_crowd(setup=eval_setup, day=DAY))
    moderate, surge = result.measured["moderate"], result.measured["surge"]
    # The moderate crowd is absorbed by replanning.
    assert moderate["infeasible_rounds"] == 0
    # The surge is not: infeasible rounds, a large overdraft, but the
    # day still completes end to end with a scored evaluation.
    assert surge["infeasible_rounds"] >= 1
    assert surge["overflow_rate"] > moderate["overflow_rate"]
    assert surge["overflow_rate"] > 0.2
    assert surge["sum_of_peaks_gbps"] > 0
    record_bench(
        moderate_overflow_rate=moderate["overflow_rate"],
        surge_overflow_rate=surge["overflow_rate"],
        surge_infeasible_rounds=surge["infeasible_rounds"],
        surge_calls=surge["calls"],
    )


def test_stress_holiday_and_shock_stay_feasible(eval_setup, scenarios, baseline_day, record_bench):
    holiday = run_campaign_day(eval_setup, scenarios["holiday"], day=DAY)
    shock = run_campaign_day(eval_setup, scenarios["demand-shock"], day=DAY)
    # The trough shrinks the day; the correlated shock grows it.
    assert holiday.stats.calls < baseline_day.stats.calls
    assert shock.stats.calls > baseline_day.stats.calls
    assert holiday.infeasible_rounds == 0
    # Replanning sees the shock at onset and keeps overdraft bounded.
    assert shock.overflow_rate < 0.2
    record_bench(
        holiday_calls=int(holiday.stats.calls),
        shock_calls=int(shock.stats.calls),
        baseline_calls=int(baseline_day.stats.calls),
        shock_overflow_rate=round(shock.overflow_rate, 4),
        holiday_sum_of_peaks_gbps=round(holiday.evaluation.sum_of_peaks_gbps, 4),
    )
