"""Fig 11 — impact of max E2E latency on user experience (MOS)."""

from conftest import emit

from repro.experiments.quality_exps import run_fig11


def test_fig11_mos_curve(benchmark):
    result = benchmark.pedantic(run_fig11, kwargs={"samples_per_bucket": 600}, rounds=1)
    emit(result)
    # Flat until ~75ms, then a clear decline (Fig 11's two claims).
    assert abs(result.measured["drop_below_knee"]) < 0.06
    assert result.measured["drop_beyond_knee"] < -0.08
