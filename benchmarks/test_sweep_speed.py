"""Parallel sweep speed — multi-worker day fan-out vs the serial loop.

The ISSUE-5 tentpole: on a high-volume multi-day §8 window, fanning the
per-day forecast and replay phases over 4 process workers must cut
wall-clock by at least 2x versus the serial loop (``workers=1``, the
pinned reference path) — while reproducing the serial results exactly.
Only the hot-started ``PlanCache`` solve loop stays serial, so the
window is sized so per-day replay dominates planning (Amdahl).

Needs real CPUs: the pin is skipped when fewer than 4 are available to
this process (the nightly CI runners have them; a 1-core sandbox
cannot physically speed anything up).
"""

import numpy as np
import pytest

from repro.core.sweep import SweepRunner, available_workers
from repro.core.titan_next import build_europe_setup, run_prediction_sweep

pytestmark = pytest.mark.slow

REQUIRED_SWEEP_SPEEDUP = 2.0
WORKERS = 4
#: Wed..Fri next week, 10 days: enough per-day replay work to amortize
#: pool spawn and keep the serial planning loop a small Amdahl slice.
DAYS = list(range(30, 40))


@pytest.fixture(scope="module")
def sweep_setup():
    """A replay-heavy scenario: 120k calls/day keeps the parallel phase
    (trace synthesis + controller replay) well above the serial LP loop."""
    return build_europe_setup(daily_calls=120_000, top_n_configs=60)


@pytest.mark.skipif(
    available_workers() < WORKERS,
    reason=f"speedup pin needs >= {WORKERS} CPUs available to this process",
)
def test_parallel_sweep_is_2x_faster(sweep_setup):
    import time

    start = time.perf_counter()
    serial = run_prediction_sweep(sweep_setup, DAYS, workers=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_prediction_sweep(sweep_setup, DAYS, workers=WORKERS)
    t_parallel = time.perf_counter() - start

    # Byte-identical results first — a fast wrong answer pins nothing.
    for day in DAYS:
        assert parallel[day].stats == serial[day].stats
        a, b = parallel[day].assignments, serial[day].assignments
        assert np.array_equal(a.final_dc_idx, b.final_dc_idx)
        assert np.array_equal(a.final_option_idx, b.final_option_idx)
        assert np.array_equal(a.initial_dc_idx, b.initial_dc_idx)

    speedup = t_serial / t_parallel
    calls = sum(r.stats.calls for r in serial.values())
    print(
        f"\nprediction sweep over {len(DAYS)} days ({calls} calls): "
        f"serial {t_serial:.2f} s, {WORKERS} workers {t_parallel:.2f} s "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SWEEP_SPEEDUP


def test_parallel_sweep_reproduces_serial_results(sweep_setup):
    """The determinism half of the pin, runnable on any core count.

    A short window keeps this affordable even single-core; the full
    equivalence matrix lives in tests/test_sweep_parallel.py on the
    small setup.
    """
    days = DAYS[:3]
    serial = run_prediction_sweep(sweep_setup, days, workers=1)
    parallel = run_prediction_sweep(sweep_setup, days, workers=2)
    for day in days:
        assert parallel[day].stats == serial[day].stats
        assert parallel[day].realized_table() == serial[day].realized_table()


def test_worker_pool_overhead_is_bounded(sweep_setup):
    """Process fan-out must never catastrophically regress a window.

    Even on one core, pool spawn + setup pickling + result shipping
    for an 8-day window has to stay within 3x of the serial loop —
    catches accidental per-task setup re-pickling or eval-cache
    shipping (the payload is pickled once per pool, not per day).
    """
    import time

    start = time.perf_counter()
    run_prediction_sweep(sweep_setup, DAYS, workers=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    runner = SweepRunner(sweep_setup, workers=2)
    runner.run_prediction_sweep(DAYS)
    t_parallel = time.perf_counter() - start

    print(f"\noverhead check: serial {t_serial:.2f} s, 2 workers {t_parallel:.2f} s")
    assert t_parallel < t_serial * 3.0
