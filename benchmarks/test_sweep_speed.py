"""Parallel sweep speed — multi-worker day fan-out vs the serial loop.

The ISSUE-5 tentpole: on a high-volume multi-day §8 window, fanning the
per-day forecast and replay phases over 4 process workers must cut
wall-clock by at least 2x versus the serial loop (``workers=1``, the
pinned reference path) — while reproducing the serial results exactly.
Only the hot-started ``PlanCache`` solve loop stays serial, so the
window is sized so per-day replay dominates planning (Amdahl).

The ISSUE-6 tentpole removes that last serial phase: on a
planning-heavy window (many configs → a big Fig 13 LP), the
``decomposed+pipelined`` planner — slot subproblems fanned over the
pool, next day's plan solving while the pool replays the previous day —
must beat the phase-alternating serial planning loop by at least 1.5x
at the same 4 workers.

The ISSUE-8 tentpole attacks the fan-out's *memory channel*: at
millions of calls per day the process backend spends its time pickling
— the setup to every worker, every day's full tables back.  The
``process+shm`` backend maps worker state zero-copy out of one shared
segment and ships compact ``DaySummary`` results, and must beat plain
``process`` by at least 1.3x at the same 4 workers while cutting the
per-day IPC payload by at least 10x.

Needs real CPUs: the pins are skipped when fewer than 4 are available
to this process (the nightly CI runners have them; a 1-core sandbox
cannot physically speed anything up).  The IPC-reduction half of the
ISSUE-8 pin is core-count independent and always runs.
"""

import pickle
import resource
import time

import numpy as np
import pytest

from repro.core.shm import ShmArena
from repro.core.sweep import (
    SummaryDayResult,
    SweepRunner,
    available_workers,
    summarize_day_result,
)
from repro.core.titan_next import build_europe_setup, run_prediction_sweep

pytestmark = pytest.mark.slow

REQUIRED_SWEEP_SPEEDUP = 2.0
REQUIRED_PLANNER_SPEEDUP = 1.5
REQUIRED_SHM_SPEEDUP = 1.3
REQUIRED_IPC_REDUCTION = 10.0
WORKERS = 4


def peak_rss_mb() -> float:
    """This process's lifetime peak resident set (ru_maxrss is KiB on Linux)."""
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1)
#: Wed..Fri next week, 10 days: enough per-day replay work to amortize
#: pool spawn and keep the serial planning loop a small Amdahl slice.
DAYS = list(range(30, 40))


@pytest.fixture(scope="module")
def sweep_setup():
    """A replay-heavy scenario: 120k calls/day keeps the parallel phase
    (trace synthesis + controller replay) well above the serial LP loop."""
    return build_europe_setup(daily_calls=120_000, top_n_configs=60)


@pytest.fixture(scope="module")
def planning_heavy_setup():
    """A scenario where the planning loop is the Amdahl bottleneck.

    150 top configs makes the per-day Fig 13 LP large enough that at 4
    workers serial planning rivals the fanned replay phase — exactly
    the regime the decomposed+pipelined planner exists for."""
    return build_europe_setup(daily_calls=120_000, top_n_configs=150)


@pytest.mark.skipif(
    available_workers() < WORKERS,
    reason=f"speedup pin needs >= {WORKERS} CPUs available to this process",
)
def test_parallel_sweep_is_2x_faster(sweep_setup, record_bench):
    start = time.perf_counter()
    serial = run_prediction_sweep(sweep_setup, DAYS, workers=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_prediction_sweep(sweep_setup, DAYS, workers=WORKERS)
    t_parallel = time.perf_counter() - start

    # Byte-identical results first — a fast wrong answer pins nothing.
    for day in DAYS:
        assert parallel[day].stats == serial[day].stats
        a, b = parallel[day].assignments, serial[day].assignments
        assert np.array_equal(a.final_dc_idx, b.final_dc_idx)
        assert np.array_equal(a.final_option_idx, b.final_option_idx)
        assert np.array_equal(a.initial_dc_idx, b.initial_dc_idx)

    speedup = t_serial / t_parallel
    calls = sum(r.stats.calls for r in serial.values())
    print(
        f"\nprediction sweep over {len(DAYS)} days ({calls} calls): "
        f"serial {t_serial:.2f} s, {WORKERS} workers {t_parallel:.2f} s "
        f"-> {speedup:.2f}x"
    )
    record_bench(
        days=len(DAYS),
        calls=int(calls),
        workers=WORKERS,
        t_serial_s=round(t_serial, 3),
        t_parallel_s=round(t_parallel, 3),
        speedup=round(speedup, 3),
        required_speedup=REQUIRED_SWEEP_SPEEDUP,
    )
    assert speedup >= REQUIRED_SWEEP_SPEEDUP


@pytest.mark.skipif(
    available_workers() < WORKERS,
    reason=f"speedup pin needs >= {WORKERS} CPUs available to this process",
)
def test_pipelined_decomposed_sweep_is_1_5x_faster(planning_heavy_setup, record_bench):
    """The ISSUE-6 pin: decomposed+pipelined planning vs the serial
    planning loop, same worker count, end to end.

    The baseline is the phase-alternating runner (parallel forecast →
    *serial* monolithic planning → parallel replay); the candidate fans
    slot subproblems over the same pool and keeps replay running while
    the next day's plan solves.  Plans are equivalent by the exactness
    contract, so scores must agree to solver precision — checked on a
    few days before the wall-clock assertion."""
    setup = planning_heavy_setup

    start = time.perf_counter()
    baseline = run_prediction_sweep(setup, DAYS, workers=WORKERS)
    t_baseline = time.perf_counter() - start

    start = time.perf_counter()
    piped = run_prediction_sweep(
        setup, DAYS, workers=WORKERS, planner="decomposed+pipelined"
    )
    t_piped = time.perf_counter() - start

    # Equivalent results first — a fast wrong answer pins nothing.
    assert set(piped) == set(baseline)
    for day in DAYS[:3]:
        ours = piped[day].evaluate(setup.scenario)
        reference = baseline[day].evaluate(setup.scenario)
        assert ours.sum_of_peaks_gbps == pytest.approx(
            reference.sum_of_peaks_gbps, rel=1e-6
        )

    speedup = t_baseline / t_piped
    print(
        f"\nplanning-heavy sweep over {len(DAYS)} days: serial-planning "
        f"{t_baseline:.2f} s, decomposed+pipelined {t_piped:.2f} s "
        f"-> {speedup:.2f}x at {WORKERS} workers"
    )
    record_bench(
        days=len(DAYS),
        workers=WORKERS,
        t_serial_planning_s=round(t_baseline, 3),
        t_pipelined_s=round(t_piped, 3),
        speedup=round(speedup, 3),
        required_speedup=REQUIRED_PLANNER_SPEEDUP,
    )
    assert speedup >= REQUIRED_PLANNER_SPEEDUP


def test_decomposed_planning_matches_and_stays_bounded(planning_heavy_setup, record_bench):
    """Core-count-independent half of the planner pin.

    Serial decomposed planning (slot shards + coupling pass, no pool)
    must reproduce the monolithic day plans and stay within 4x of the
    hot-started monolithic loop — catches a broken pricing loop (which
    would show up as runaway rounds or full-LP fallbacks) even on the
    1-core sandbox where the wall-clock pin above is skipped.  (Day 1
    builds all 48 per-slot caches, so a longer window amortizes the
    cold start toward the ~parity steady state.)"""
    setup = planning_heavy_setup
    days = DAYS[:6]

    runner = SweepRunner(setup, workers=1)
    predictions = runner.forecast_days(days)

    start = time.perf_counter()
    mono = runner.plan_days(predictions)
    t_mono = time.perf_counter() - start

    decomposed_runner = SweepRunner(setup, workers=1, planner="decomposed")
    start = time.perf_counter()
    dec = decomposed_runner.plan_days(predictions)
    t_dec = time.perf_counter() - start

    for day in days:
        keys = set(mono[day]) | set(dec[day])
        deviation = max(abs(mono[day].get(k, 0.0) - dec[day].get(k, 0.0)) for k in keys)
        assert deviation < 1e-6

    print(
        f"\nplanning only, {len(days)} days: monolithic {t_mono:.2f} s, "
        f"decomposed (serial slots) {t_dec:.2f} s"
    )
    record_bench(
        days=len(days),
        t_monolithic_s=round(t_mono, 3),
        t_decomposed_s=round(t_dec, 3),
        overhead_ratio=round(t_dec / t_mono, 3),
    )
    assert t_dec < t_mono * 4.0


@pytest.mark.skipif(
    available_workers() < WORKERS,
    reason=f"speedup pin needs >= {WORKERS} CPUs available to this process",
)
def test_shm_sweep_is_1_3x_faster_than_process(record_bench):
    """The ISSUE-8 wall-clock pin: ``process+shm`` vs plain ``process``.

    At a million calls per day the plain process backend is dominated
    by serialization — the setup pickled into every worker and every
    day's full ``CallTable``/``AssignmentBatch`` columns pickled back.
    Mapping state from one shared segment and shipping distinct-row
    summaries must win end to end, and byte-identically (checked via
    the reconstruction path before the clock is read)."""
    setup = build_europe_setup(daily_calls=1_000_000, top_n_configs=60)
    days = DAYS[:6]

    start = time.perf_counter()
    plain = run_prediction_sweep(setup, days, workers=WORKERS)
    t_plain = time.perf_counter() - start

    start = time.perf_counter()
    shm = run_prediction_sweep(setup, days, workers=WORKERS, shared_memory=True)
    t_shm = time.perf_counter() - start

    # Byte-identical results first — a fast wrong answer pins nothing.
    for day in days:
        assert shm[day].stats == plain[day].stats
        assert shm[day].realized_table() == plain[day].realized_table()

    # IPC accounting: bytes pickled through pipes per swept day.  Plain
    # process ships the whole setup down and full per-day results up;
    # shm ships only the in-band remainder down (large arrays live in
    # the segment) and DaySummary rows up.
    runner = SweepRunner(setup, workers=WORKERS, shared_memory=True)
    arena = ShmArena(runner._shm_state_payload())
    try:
        shm_state_bytes = len(arena.payload().pickled)
    finally:
        arena.dispose()
    plain_state_bytes = len(pickle.dumps(setup, protocol=pickle.HIGHEST_PROTOCOL))
    result_bytes_plain = np.mean(
        [len(pickle.dumps(plain[d], protocol=pickle.HIGHEST_PROTOCOL)) for d in days]
    )
    result_bytes_shm = np.mean(
        [len(pickle.dumps(shm[d].summary, protocol=pickle.HIGHEST_PROTOCOL)) for d in days]
    )
    ipc_plain = plain_state_bytes / len(days) + float(result_bytes_plain)
    ipc_shm = shm_state_bytes / len(days) + float(result_bytes_shm)
    reduction = ipc_plain / ipc_shm

    speedup = t_plain / t_shm
    print(
        f"\nshm sweep over {len(days)} days at 1M calls/day: process "
        f"{t_plain:.2f} s, process+shm {t_shm:.2f} s -> {speedup:.2f}x; "
        f"IPC {ipc_plain / 1e6:.1f} MB/day -> {ipc_shm / 1e6:.3f} MB/day "
        f"({reduction:.0f}x); peak RSS {peak_rss_mb()} MB"
    )
    record_bench(
        days=len(days),
        workers=WORKERS,
        t_process_s=round(t_plain, 3),
        t_shm_s=round(t_shm, 3),
        speedup=round(speedup, 3),
        required_speedup=REQUIRED_SHM_SPEEDUP,
        ipc_bytes_per_day=int(ipc_shm),
        ipc_bytes_per_day_process=int(ipc_plain),
        ipc_reduction=round(reduction, 1),
        peak_rss_mb=peak_rss_mb(),
    )
    assert speedup >= REQUIRED_SHM_SPEEDUP
    assert reduction >= REQUIRED_IPC_REDUCTION


def test_compact_summary_ipc_reduction(sweep_setup, record_bench):
    """Core-count-independent half of the ISSUE-8 pin.

    The worker→parent result channel: a ``DaySummary`` (distinct
    realized rows + stats) must pickle at least 10x smaller than the
    full ``PredictionDayResult`` it summarizes — measured on the same
    day, and checked equivalent before the size pin."""
    day = DAYS[0]
    full = run_prediction_sweep(sweep_setup, [day], workers=1)[day]
    summary = summarize_day_result(sweep_setup.scenario, full, day, 71, True)

    full_bytes = len(pickle.dumps(full, protocol=pickle.HIGHEST_PROTOCOL))
    compact_bytes = len(pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL))
    reduction = full_bytes / compact_bytes

    # The summary must still answer the realized table bit-for-bit.
    runner = SweepRunner(sweep_setup, workers=1)
    wrapped = SummaryDayResult(summary, runner._state, runner._canonical_configs())
    assert wrapped.realized_table() == full.realized_table()
    assert wrapped.stats == full.stats

    print(
        f"\ncompact summary: full result {full_bytes / 1e6:.2f} MB, "
        f"summary {compact_bytes / 1e3:.1f} kB -> {reduction:.0f}x smaller; "
        f"peak RSS {peak_rss_mb()} MB"
    )
    record_bench(
        calls=int(full.stats.calls),
        full_result_bytes=full_bytes,
        ipc_bytes_per_day=compact_bytes,
        ipc_reduction=round(reduction, 1),
        required_reduction=REQUIRED_IPC_REDUCTION,
        peak_rss_mb=peak_rss_mb(),
    )
    assert reduction >= REQUIRED_IPC_REDUCTION


def test_parallel_sweep_reproduces_serial_results(sweep_setup):
    """The determinism half of the pin, runnable on any core count.

    A short window keeps this affordable even single-core; the full
    equivalence matrix lives in tests/test_sweep_parallel.py on the
    small setup.
    """
    days = DAYS[:3]
    serial = run_prediction_sweep(sweep_setup, days, workers=1)
    parallel = run_prediction_sweep(sweep_setup, days, workers=2)
    for day in days:
        assert parallel[day].stats == serial[day].stats
        assert parallel[day].realized_table() == serial[day].realized_table()


def test_worker_pool_overhead_is_bounded(sweep_setup):
    """Process fan-out must never catastrophically regress a window.

    Even on one core, pool spawn + setup pickling + result shipping
    for an 8-day window has to stay within 3x of the serial loop —
    catches accidental per-task setup re-pickling or eval-cache
    shipping (the payload is pickled once per pool, not per day).
    """
    start = time.perf_counter()
    run_prediction_sweep(sweep_setup, DAYS, workers=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    runner = SweepRunner(sweep_setup, workers=2)
    runner.run_prediction_sweep(DAYS)
    t_parallel = time.perf_counter() - start

    print(f"\noverhead check: serial {t_serial:.2f} s, 2 workers {t_parallel:.2f} s")
    assert t_parallel < t_serial * 3.0
