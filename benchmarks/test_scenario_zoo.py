"""Scenario-zoo benchmark family: the §7/§8 comparison per topology.

Runs every registered ``scenario-*`` experiment — the RTT-calibrated
americas / apac / emea / global topologies — through an oracle day and
a prediction day, and pins the paper's headline shape on each: Titan-
Next's sum-of-peaks beats WRR's outside the §7.3 Europe slice too.
Per-scenario savings, topology sizes, and the RTT-fit quality land in
``BENCH_scenario_zoo.json`` for nightly tracking.
"""

import pytest
from conftest import emit

from repro.experiments.registry import SCENARIO_EXPERIMENT_IDS, run_experiment
from repro.scenarios import RTT_FIT_TOLERANCE_MS, default_rtt_fit

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("experiment_id", SCENARIO_EXPERIMENT_IDS)
def test_scenario_comparison(experiment_id, record_bench):
    result = emit(run_experiment(experiment_id))
    measured = result.measured
    oracle = measured["oracle_normalized_peaks"]
    predicted = measured["prediction_normalized_peaks"]
    # The headline claim, per topology: Titan-Next's WAN peak beats the
    # WRR baseline both with oracle demand and under prediction.
    assert oracle["titan-next"] < oracle["wrr"] == 1.0
    assert predicted["titan-next"] < predicted["wrr"] == 1.0
    # The topology is a real multi-region slice, not a degenerate one.
    assert measured["dcs"] >= 5
    assert measured["wan_links"] >= measured["dcs"] - 1
    record_bench(
        countries=measured["countries"],
        dcs=measured["dcs"],
        wan_links=measured["wan_links"],
        oracle_tn_savings_vs_wrr=round(1 - oracle["titan-next"], 3),
        prediction_tn_savings_vs_wrr=round(1 - predicted["titan-next"], 3),
        tn_dc_migration_rate=measured["tn_dc_migration_rate"],
    )


def test_rtt_fit_quality(record_bench):
    """The zoo's calibration contract: fitted corridors track the table."""
    fit = default_rtt_fit()
    covered = [e for e in fit.entries if not e.clamped]
    assert covered, "the RTT fit covered no corridor at all"
    assert fit.max_unclamped_residual_ms <= RTT_FIT_TOLERANCE_MS
    record_bench(
        fitted_pairs=len(covered),
        clamped_pairs=len(fit.entries) - len(covered),
        max_residual_ms=round(fit.max_unclamped_residual_ms, 4),
        tolerance_ms=RTT_FIT_TOLERANCE_MS,
    )
