"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure), prints
the measured-vs-paper comparison, and asserts the qualitative shape the
paper claims.  The evaluation setup is shared across benches to
amortize scenario construction.
"""

import pytest

from repro.experiments.eval_exps import default_setup


@pytest.fixture(scope="session")
def eval_setup():
    """Scaled intra-Europe setup shared by the §7/§8 benches."""
    return default_setup(daily_calls=6_000.0, top_n_configs=60)


def emit(result):
    """Print a rendered experiment block (visible with ``-s`` / on failure)."""
    print()
    print(result.render())
    return result
