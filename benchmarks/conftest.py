"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure), prints
the measured-vs-paper comparison, and asserts the qualitative shape the
paper claims.  The evaluation setup is shared across benches to
amortize scenario construction.

Besides the printed blocks, the tier emits machine-readable results:
every benchmark's wall-clock (and any metrics it records through the
``record_bench`` fixture) is written to ``benchmarks/out/BENCH_*.json``
at session end, one file per benchmark module — the artifact nightly CI
uploads so perf numbers are comparable across runs without scraping
logs.
"""

import json
import platform
import time
from collections import defaultdict
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.core.sweep import available_workers
from repro.experiments.eval_exps import default_setup

#: Per-test records for this session: nodeid -> {duration, outcome, metrics}.
_RECORDS = {}

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def eval_setup():
    """Scaled intra-Europe setup shared by the §7/§8 benches."""
    return default_setup(daily_calls=6_000.0, top_n_configs=60)


def emit(result):
    """Print a rendered experiment block (visible with ``-s`` / on failure)."""
    print()
    print(result.render())
    return result


@pytest.fixture
def record_bench(request):
    """Record named metrics for this benchmark's BENCH_*.json entry.

    Usage::

        def test_sweep_speed(record_bench):
            ...
            record_bench(speedup=round(speedup, 2), workers=4)

    Repeated calls merge; wall-clock and outcome are recorded for every
    benchmark automatically, so only domain metrics (speedups, call
    counts, objective gaps) need explicit recording.
    """

    def record(**metrics):
        entry = _RECORDS.setdefault(request.node.nodeid, {})
        entry.setdefault("metrics", {}).update(metrics)

    return record


def pytest_runtest_logreport(report):
    """Auto-record wall-clock + outcome for every benchmark test."""
    if report.when != "call":
        return
    entry = _RECORDS.setdefault(report.nodeid, {})
    entry["duration_s"] = round(report.duration, 4)
    entry["outcome"] = report.outcome


def pytest_sessionfinish(session):
    """Write one ``BENCH_<module>.json`` per benchmark module run."""
    if not _RECORDS:
        return
    by_module = defaultdict(dict)
    for nodeid, entry in _RECORDS.items():
        # nodeid: "benchmarks/test_sweep_speed.py::test_x" -> "sweep_speed"
        module_path, _, test_name = nodeid.partition("::")
        module = Path(module_path).stem.removeprefix("test_")
        by_module[module][test_name or nodeid] = entry
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    stamp = datetime.fromtimestamp(time.time(), tz=timezone.utc).isoformat()
    for module, benchmarks in by_module.items():
        payload = {
            "schema": "repro-bench/1",
            "module": module,
            "generated_at": stamp,
            "python": platform.python_version(),
            "available_workers": available_workers(),
            "exitstatus": int(getattr(session, "exitstatus", 0)),
            "benchmarks": benchmarks,
        }
        path = OUT_DIR / f"BENCH_{module}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
