"""Table 1 — scale of the measurement study."""

from conftest import emit

from repro.experiments.measurement_exps import run_tab1


def test_tab1_scale(benchmark):
    result = benchmark.pedantic(
        run_tab1, kwargs={"probes_per_country_hour": 4, "hours": 24}, rounds=1
    )
    emit(result)
    # Same schema as the paper's Table 1, at our synthetic scale.
    assert result.measured["destination_dcs"] == 21
    assert result.measured["source_countries"] >= 30
    assert result.measured["source_cities"] > result.measured["source_countries"]
    assert result.measured["ip_subnets"] >= result.measured["source_asns"]
