"""Fig 3 — CDFs of Internet-minus-WAN hourly-median latency."""

from conftest import emit

from repro.experiments.measurement_exps import run_fig3


def test_fig3_latency_diff_buckets(benchmark):
    result = benchmark.pedantic(run_fig3, kwargs={"hours": 120, "hour_step": 6}, rounds=1)
    emit(result)
    measured = result.measured
    # Paper: 33.7% strictly better / 24.0% / 19.6% / 22.7%.
    assert 0.25 <= measured["internet_strictly_better"] <= 0.45
    assert measured["worse_up_to_10ms"] >= 0.15
    assert measured["worse_beyond_25ms"] >= 0.10
    total = (
        measured["internet_strictly_better"]
        + measured["worse_up_to_10ms"]
        + measured["worse_10_to_25ms"]
        + measured["worse_beyond_25ms"]
    )
    assert abs(total - 1.0) < 1e-9
