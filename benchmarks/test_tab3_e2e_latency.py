"""Table 3 — daily average of max E2E latency for WRR / LF / TN."""

from conftest import emit

from repro.experiments.eval_exps import run_tab3


def test_tab3_e2e_latency(benchmark, eval_setup):
    result = benchmark.pedantic(run_tab3, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    measured = result.measured
    # Ordering: LF best (optimizes latency), TN close, WRR worst.
    assert measured["lf"]["mean_ms"] <= measured["titan-next"]["mean_ms"]
    assert measured["titan-next"]["mean_ms"] < measured["wrr"]["mean_ms"]
    # TN's penalty vs LF is small relative to WRR's gap (the §7.5 claim).
    gap_tn = measured["titan-next"]["mean_ms"] - measured["lf"]["mean_ms"]
    gap_wrr = measured["wrr"]["mean_ms"] - measured["lf"]["mean_ms"]
    assert gap_tn < 0.75 * gap_wrr
