"""Fig 8 — loss and RTT vs fraction of traffic on the Internet."""

from conftest import emit

from repro.experiments.quality_exps import run_fig8


def test_fig8_elasticity(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1)
    emit(result)
    # Paper: no systematic inflation up to the 20% production cap.
    assert abs(result.measured["rtt_drift_ms"]) < 5.0
    assert abs(result.measured["loss_drift_pct"]) < 0.05
