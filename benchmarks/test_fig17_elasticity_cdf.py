"""Fig 17 — elasticity CDFs across European (country, DC) pairs."""

from conftest import emit

from repro.experiments.quality_exps import run_fig17


def test_fig17_elasticity_cdf(benchmark):
    result = benchmark.pedantic(run_fig17, rounds=1)
    emit(result)
    measured = result.measured
    # Paper: P90 latency delta < 20 ms; loss deltas tiny.
    assert measured["p90_rtt_delta_ms"] < 20.0
    assert abs(measured["median_loss_delta_pct"]) < 0.2
