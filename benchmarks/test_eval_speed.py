"""Evaluation-layer speed — vectorized vs scalar scoring (§7.1).

The ISSUE-4 tentpole: on the default intra-Europe scenario (150
configs, ~40k calls/day), ``evaluate_batch`` must score a day at least
3x faster than the pinned scalar ``evaluate_assignment`` reference —
both on an oracle-mode assignment table and on a §8 controller day's
``AssignmentBatch`` (where the scalar path also pays the dict-table
round trip) — while reproducing every metric.
"""

import time

import pytest

from repro.analysis.metrics import (
    evaluate_assignment,
    evaluate_batch,
    realized_assignment_table,
)
from repro.core.controller import FirstJoinerWrr
from repro.core.policies import WrrPolicy
from repro.core.titan_next import build_europe_setup, oracle_demand_for_day
from repro.workload.demand import SLOTS_PER_DAY
from repro.workload.traces import TraceGenerator

pytestmark = pytest.mark.slow

REQUIRED_EVAL_SPEEDUP = 3.0
DAY = 2
TRACE_DAY = 30


@pytest.fixture(scope="module")
def default_setup():
    """Default Europe scenario (§7.3 scale: 150 configs, 40k calls)."""
    return build_europe_setup()


def _best_of(fn, rounds=3):
    """Minimum wall-clock over a few rounds (damps scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_same_metrics(batch, scalar):
    assert batch.total_calls == pytest.approx(scalar.total_calls, rel=1e-9)
    assert batch.sum_of_peaks_gbps == pytest.approx(scalar.sum_of_peaks_gbps, rel=1e-9)
    assert batch.total_wan_traffic == pytest.approx(scalar.total_wan_traffic, rel=1e-9)
    assert batch.internet_share == pytest.approx(scalar.internet_share, rel=1e-9)
    assert batch.mean_e2e_ms() == pytest.approx(scalar.mean_e2e_ms(), rel=1e-9)
    assert batch.percentile_e2e_ms(95) == pytest.approx(
        scalar.percentile_e2e_ms(95), rel=1e-9
    )


def test_oracle_table_scoring_is_3x_faster(default_setup):
    setup = default_setup
    demand = oracle_demand_for_day(setup, DAY)
    table = WrrPolicy(setup.scenario).assign(demand)

    t_ref, scalar = _best_of(lambda: evaluate_assignment(setup.scenario, table, "wrr"))
    t_new, batch = _best_of(lambda: evaluate_batch(setup.scenario, table, "wrr"))
    _assert_same_metrics(batch, scalar)

    speedup = t_ref / t_new
    print(
        f"\noracle table scoring: scalar {t_ref * 1e3:.1f} ms, "
        f"batched {t_new * 1e3:.1f} ms -> {speedup:.1f}x ({len(table)} rows)"
    )
    assert speedup >= REQUIRED_EVAL_SPEEDUP


def test_assignment_batch_scoring_is_3x_faster(default_setup):
    setup = default_setup
    trace = TraceGenerator(setup.demand, top_n_configs=setup.top_n_configs, seed=71)
    calls = trace.table_for_day(TRACE_DAY)
    batch = FirstJoinerWrr(setup.scenario, seed=73).process_table(calls)

    def scalar_path():
        # How §8 days were scored before the batch path existed: fold
        # the AssignmentBatch into a dict table, then walk it.
        table = realized_assignment_table(batch, SLOTS_PER_DAY)
        return evaluate_assignment(setup.scenario, table, "wrr")

    t_ref, scalar = _best_of(scalar_path)
    t_new, batched = _best_of(lambda: evaluate_batch(setup.scenario, batch, "wrr"))
    _assert_same_metrics(batched, scalar)

    speedup = t_ref / t_new
    print(
        f"\nassignment-batch scoring: scalar {t_ref * 1e3:.1f} ms, "
        f"batched {t_new * 1e3:.1f} ms -> {speedup:.1f}x ({len(batch)} calls)"
    )
    assert speedup >= REQUIRED_EVAL_SPEEDUP
