"""Fig 18 — latency change over 12 months."""

from conftest import emit

from repro.experiments.measurement_exps import run_fig18


def test_fig18_longterm_trend(benchmark):
    result = benchmark.pedantic(run_fig18, kwargs={"hours": 96}, rounds=1)
    emit(result)
    measured = result.measured
    # 80+% of paths improved; Internet improves at least as much as WAN.
    assert measured["wan_fraction_improved"] > 0.7
    assert measured["internet_fraction_improved"] > 0.7
    assert measured["internet_median_change_ms"] <= measured["wan_median_change_ms"]
