"""Future work (§6.3) — per-participant split routing prototype."""

from conftest import emit

from repro.experiments.eval_exps import run_ablation_split_routing


def test_ablation_split_routing(benchmark, eval_setup):
    result = benchmark.pedantic(run_ablation_split_routing, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    measured = result.measured
    # Split routing can never be worse than the single-option LP (its
    # feasible region strictly contains the single-option region at the
    # aggregate level), and the latency constraint is weaker.
    assert (
        measured["split_routing_sum_of_peaks"]
        <= measured["single_option_sum_of_peaks"] * (1 + 1e-6)
    )
