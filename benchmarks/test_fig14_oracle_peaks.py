"""Fig 14 — oracle sum-of-peak WAN bandwidth per day of the week."""

from conftest import emit

from repro.experiments.eval_exps import run_fig14


def test_fig14_oracle_week(benchmark, eval_setup):
    result = benchmark.pedantic(run_fig14, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    rows = result.measured["normalized_peaks_by_day"]
    # TN wins on every day; LF sits between TN and WRR on weekdays.
    for label, row in rows.items():
        assert row["titan-next"] < 1.0, label
        assert row["titan-next"] <= row["lf"] + 1e-9, label
    # Weekday savings in the paper's ballpark (24-28% vs WRR).
    savings = result.measured["tn_savings_vs_wrr_weekdays"]
    assert min(savings) > 0.10
    assert max(savings) < 0.55
