"""§4.2(7) — fiber cut: WAN detour plus Internet fall-back."""

from conftest import emit

from repro.experiments.eval_exps import run_ablation_fiber_cut


def test_ablation_fiber_cut(benchmark):
    result = benchmark.pedantic(run_ablation_fiber_cut, rounds=1)
    emit(result)
    measured = result.measured
    # Losing a backbone link can only make the WAN bill worse (or equal,
    # if the link was not load-bearing for the optimum).
    assert measured["sum_of_peaks_after"] >= measured["sum_of_peaks_before"] - 1e-6
    # The Internet keeps carrying traffic through the cut.
    assert measured["internet_share_after"] > 0
