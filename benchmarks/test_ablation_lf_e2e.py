"""§7.4 ablation — TN vs LF minimizing total max-E2E latency."""

from conftest import emit

from repro.experiments.eval_exps import run_ablation_lf_e2e


def test_ablation_lf_e2e(benchmark, eval_setup):
    result = benchmark.pedantic(run_ablation_lf_e2e, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    # TN still beats the latency-optimizing variant on peaks.
    assert result.measured["tn_savings_vs_lf_e2e"] > 0.0
