"""Fig 20 — CDF of normalized forecast errors (RMSE / MAE)."""

from conftest import emit

from repro.experiments.eval_exps import run_fig20


def test_fig20_forecast_accuracy(benchmark):
    result = benchmark.pedantic(run_fig20, kwargs={"configs": 20}, rounds=1)
    emit(result)
    measured = result.measured
    # Small median errors, RMSE above MAE, most configs under 20%.
    assert measured["median_mae"] < 0.15
    assert measured["median_rmse"] < 0.25
    assert measured["median_rmse"] >= measured["median_mae"]
    assert measured["share_mae_below_20pct"] > 0.7
