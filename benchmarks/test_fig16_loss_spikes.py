"""Fig 16 — CDF of sustained loss spikes across European pairs."""

from conftest import emit

from repro.experiments.quality_exps import run_fig16


def test_fig16_sustained_spikes(benchmark):
    result = benchmark.pedantic(run_fig16, rounds=1)
    emit(result)
    measured = result.measured
    # Internet suffers sustained >=0.1% loss slots far more than WAN.
    assert measured["internet_median_slot_share_ge_0.1pct"] > 0.005
    assert measured["wan_max_slot_share_ge_0.1pct"] <= 0.02
    # >=1% slots are rarer than >=0.1% slots.
    assert (
        measured["internet_median_slot_share_ge_1pct"]
        <= measured["internet_median_slot_share_ge_0.1pct"]
    )
