"""§7.4 ablation — savings from MP DC placement only."""

from conftest import emit

from repro.experiments.eval_exps import run_ablation_mp_only


def test_ablation_mp_only(benchmark, eval_setup):
    result = benchmark.pedantic(run_ablation_mp_only, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    measured = result.measured
    # Placement alone captures part of the savings; Internet offload
    # adds the rest (full >= mp-only > 0).
    assert measured["tn_mp_only_savings_vs_wrr"] > 0.0
    assert measured["tn_full_savings_vs_wrr"] >= measured["tn_mp_only_savings_vs_wrr"] - 1e-9
