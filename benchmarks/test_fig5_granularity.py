"""Fig 5 — F difference across clustering granularities."""

import pytest
from conftest import emit

from repro.experiments.measurement_exps import run_fig5

pytestmark = pytest.mark.slow


def test_fig5_granularity(benchmark):
    result = benchmark.pedantic(run_fig5, kwargs={"hours": 72}, rounds=1)
    emit(result)
    measured = result.measured
    # Country-level clustering is good enough: differences bounded.
    for granularity in ("asn", "city", "city_asn"):
        assert measured[granularity]["p50"] < 0.25
    # City-level diverges less than ASN-level (Fig 5 ordering).
    assert measured["city"]["p50"] <= measured["asn"]["p50"]
