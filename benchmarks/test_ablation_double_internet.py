"""§7.4 ablation — hypothetically doubled Internet capacity."""

from conftest import emit

from repro.experiments.eval_exps import run_ablation_double_internet


def test_ablation_double_internet(benchmark, eval_setup):
    result = benchmark.pedantic(
        run_ablation_double_internet, kwargs={"setup": eval_setup}, rounds=1
    )
    emit(result)
    measured = result.measured
    # More Internet capacity, (weakly) more savings.
    assert measured["tn_2x_savings_vs_wrr"] >= measured["tn_savings_vs_wrr"] - 1e-9
