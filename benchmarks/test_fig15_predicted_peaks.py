"""Fig 15 — prediction-based sum-of-peak WAN bandwidth."""

import pytest
from conftest import emit

from repro.experiments.eval_exps import run_fig15

pytestmark = pytest.mark.slow


def test_fig15_prediction_mode(benchmark, eval_setup):
    result = benchmark.pedantic(run_fig15, kwargs={"setup": eval_setup}, rounds=1)
    emit(result)
    # TN (planning on forecasts) still wins big over first-joiner
    # baselines; the paper reports 55-61% vs WRR, we land lower but the
    # ordering and scale of the gap hold.
    assert result.measured["tn_savings_vs_wrr"] > 0.25
    normalized = result.measured["normalized_peaks"]
    assert normalized["titan-next"] == min(normalized.values())
