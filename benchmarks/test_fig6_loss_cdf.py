"""Fig 6 — loss CDFs for WAN and Internet, 3 European DCs."""

from conftest import emit

from repro.experiments.quality_exps import run_fig6


def test_fig6_loss_cdfs(benchmark):
    result = benchmark.pedantic(run_fig6, kwargs={"hours": 120}, rounds=1)
    emit(result)
    measured = result.measured
    # Low loss for a large share of hours on both options...
    assert measured["internet_share_below_0.01pct"] > 0.2
    assert measured["wan_share_below_0.01pct"] > 0.2
    # ...but the Internet tail is much heavier (>=0.1% loss hours).
    assert measured["internet_share_at_least_0.1pct"] > 5 * max(
        measured["wan_share_at_least_0.1pct"], 1e-4
    )
