"""Forecast-path speed — batched demand + Holt-Winters vs the scalar path.

The ISSUE-2 tentpole: on the default 150-config intra-Europe scenario
the batched forecast pipeline (``counts_matrix`` history window +
``fit_many`` + matrix regrouping) must make ``predicted_demand_for_day``
at least 5x faster than the per-config scalar reference, and the
end-to-end ``run_prediction_day`` at least 3x faster than the same day
driven by the scalar forecaster — while producing the same tables,
plans, and realized assignment statistics.  ``run_prediction_sweep``
(one cached LP structure, RHS refresh + warm-started HiGHS per day)
must match freshly built per-day LPs exactly.
"""

import time

import pytest

from repro.core.lp import JointAssignmentLp, JointLpOptions
from repro.core.plan import OfflinePlan
from repro.core.titan_next import (
    build_europe_setup,
    predicted_demand_for_day,
    predicted_demand_for_day_reference,
    run_prediction_day,
    run_prediction_sweep,
)
from repro.core.controller import TitanNextController
from repro.workload.traces import TraceGenerator

pytestmark = pytest.mark.slow

REQUIRED_FORECAST_SPEEDUP = 5.0
REQUIRED_DAY_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def default_setup():
    """Default Europe scenario (§7.3 scale: 150 configs, 40k calls)."""
    return build_europe_setup()


def _best_of(fn, rounds=2):
    """Minimum wall-clock over a few rounds (damps scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _reference_prediction_day(setup, day, seed=71):
    """The pre-batching titan-next day: scalar forecasts, fresh LP."""
    weekend = day % 7 >= 5
    options = JointLpOptions(e2e_bound_ms=80.0 if weekend else 75.0)
    predicted = predicted_demand_for_day_reference(setup, day)
    solved = JointAssignmentLp(setup.scenario, predicted, options).solve()
    assert solved.is_optimal
    plan = OfflinePlan.from_assignment(solved.assignment)
    controller = TitanNextController(setup.scenario, plan, seed=seed + 1)
    trace = TraceGenerator(setup.demand, top_n_configs=setup.top_n_configs, seed=seed)
    return [controller.process(call) for call in trace.calls_for_day(day)], controller.stats


def test_batched_forecast_is_5x_faster_with_identical_table(default_setup):
    setup = default_setup
    t_ref, ref = _best_of(lambda: predicted_demand_for_day_reference(setup, 30))
    t_new, new = _best_of(lambda: predicted_demand_for_day(setup, 30))

    assert set(new) == set(ref)
    for key, value in ref.items():
        assert new[key] == pytest.approx(value, rel=1e-9, abs=1e-9)

    speedup = t_ref / t_new
    print(
        f"\npredicted_demand_for_day: scalar {t_ref * 1e3:.0f} ms, "
        f"batched {t_new * 1e3:.0f} ms -> {speedup:.1f}x ({len(new)} entries)"
    )
    assert speedup >= REQUIRED_FORECAST_SPEEDUP


def test_prediction_day_is_3x_faster_end_to_end(default_setup):
    setup = default_setup
    t_ref, (ref_assignments, ref_stats) = _best_of(
        lambda: _reference_prediction_day(setup, 30), rounds=1
    )
    t_new, results = _best_of(
        lambda: run_prediction_day(setup, 30, policies=("titan-next",)), rounds=2
    )
    result = results["titan-next"]

    # Same forecasts -> same plan -> the controller replays identically.
    assert result.stats == ref_stats
    assert [
        (a.call.call_id, a.final_dc, a.final_option) for a in result.assignments
    ] == [(a.call.call_id, a.final_dc, a.final_option) for a in ref_assignments]

    speedup = t_ref / t_new
    print(
        f"\nrun_prediction_day: scalar-forecast {t_ref:.2f} s, "
        f"batched {t_new:.2f} s -> {speedup:.1f}x ({result.stats.calls} calls)"
    )
    assert speedup >= REQUIRED_DAY_SPEEDUP


def test_prediction_sweep_matches_fresh_per_day_plans(default_setup):
    setup = default_setup
    days = [30, 31, 32]
    t_sweep, sweep = _best_of(lambda: run_prediction_sweep(setup, days), rounds=1)

    per_day_planning = 0.0
    for day in days:
        start = time.perf_counter()
        fresh = run_prediction_day(setup, day, policies=("titan-next",))["titan-next"]
        per_day_planning += time.perf_counter() - start
        cached = sweep[day]
        # Identical plans: the warm-started cached LP must reproduce the
        # fresh optimum, so the controller realizes the same stream.
        assert cached.stats == fresh.stats
        assert [
            (a.call.call_id, a.final_dc, a.final_option) for a in cached.assignments
        ] == [(a.call.call_id, a.final_dc, a.final_option) for a in fresh.assignments]

    print(
        f"\nprediction sweep over {len(days)} days: {t_sweep:.2f} s cached "
        f"vs {per_day_planning:.2f} s fresh per-day"
    )
    assert t_sweep < per_day_planning * 1.25
